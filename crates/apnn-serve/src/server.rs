//! The dynamic batcher: admit → fair-queue → sweep → coalesce → shard →
//! complete.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use apnn_bitpack::BitTensor4;
use apnn_kernels::stats as kstats;
use apnn_nn::compile::MainKernel;
use apnn_nn::{CompiledNet, WorkspacePool};

use crate::api::{Admission, QueuePolicy, Request, Ticket};
use crate::fault::{FaultPlan, FaultSite, Injector};
use crate::queue::{FairQueue, Pushed, QueuedRequest};
use crate::registry::{ModelKey, PlanRegistry};
use crate::stats::{ServeStats, StatsInner};
use crate::ServeError;

/// Liveness backstop base: a worker holding a partial batch whose
/// tick-based delay has not expired re-checks at this cadence (scaled by
/// `max_batch_delay`, see [`backstop`]), so a lone request is never
/// stranded waiting for submissions that will not come.
const PARTIAL_BATCH_BACKSTOP: Duration = Duration::from_millis(1);

/// Wall-clock patience for a filling partial batch. Scales with the
/// configured tick delay so a larger `max_batch_delay` really buys more
/// coalescing under steady (non-burst) load instead of being overridden
/// by a fixed constant; capped so drains stay prompt.
fn backstop(config: &ServeConfig) -> Duration {
    PARTIAL_BATCH_BACKSTOP * (1 + config.max_batch_delay.min(100) as u32)
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded queue size; `submit` blocks (backpressure) once this many
    /// requests are waiting. Only consulted under
    /// [`Admission::Backpressure`] — the shedding admission bounds each
    /// tenant's lane instead (see [`Admission::Shed`]).
    pub queue_capacity: usize,
    /// How many further *submissions* a queued request may wait through
    /// before a partial batch is dispatched anyway. `0` dispatches
    /// greedily; larger values trade queueing latency (in ticks) for
    /// batch fill. A wall-clock backstop of `(1 + max_batch_delay) ms`
    /// (capped at ~100 ms) force-dispatches when submissions stop
    /// arriving, so results never depend on wall time — only how full
    /// the batches ran.
    pub max_batch_delay: u64,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Shards a coalesced batch fans out over inside one dispatch
    /// ([`apnn_nn::CompiledNet::infer_batched_into`]): `1` executes the
    /// batch sequentially on the dispatching worker (the pre-pool
    /// behaviour); `N > 1` cuts it into `N` shards run across the Rayon
    /// pool, each against a workspace checked out of the server's shared
    /// per-plan [`WorkspacePool`]. Logits are bit-identical either way —
    /// the partition never changes per-element accumulation order.
    pub intra_batch_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch_delay: 0,
            workers: 2,
            intra_batch_threads: 1,
        }
    }
}

#[derive(Default)]
struct State {
    queue: FairQueue,
    /// The serving clock: +1 per accepted submission.
    ticks: u64,
    /// Requests currently executing in workers.
    in_flight: usize,
    shutdown: bool,
    stats: StatsInner,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for submissions / shutdown.
    work: Condvar,
    /// Submitters wait here for queue space (backpressure).
    space: Condvar,
    /// `wait_idle` callers wait here for the queue to fully drain.
    idle: Condvar,
    registry: PlanRegistry,
    config: ServeConfig,
    policy: QueuePolicy,
    /// Lock-free mirror of `State::ticks`, shared into every [`Ticket`] so
    /// `wait_deadline` observes the clock without touching the queue lock.
    clock: Arc<AtomicU64>,
    /// One shared [`WorkspacePool`] per served plan (created on the first
    /// batch for that plan, shared by every worker and every intra-batch
    /// shard). Sized so the population can cover every worker dispatching
    /// at full intra-batch width simultaneously; `workspace_creates` proves
    /// it warms to a fixed size and never grows afterwards.
    pools: Mutex<HashMap<ModelKey, Arc<WorkspacePool>>>,
    /// The armed fault schedule (inert unless built with `fault-inject`).
    /// Shared into the registry and the wire listeners so one seed drives
    /// one coherent schedule across every injection site.
    faults: Arc<Injector>,
    /// Idempotent wire resubmissions deduplicated by the TCP listeners
    /// (surfaced as [`ServeStats::client_retries`]).
    wire_retries: AtomicU64,
}

impl Shared {
    /// The shared pool for `key`, created on first use.
    fn pool_for(&self, key: &ModelKey, plan: &CompiledNet) -> Arc<WorkspacePool> {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pool) = pools.get(key) {
            return Arc::clone(pool);
        }
        let max = self.config.workers.max(1) * self.config.intra_batch_threads.max(1);
        let pool = Arc::new(WorkspacePool::new(plan, max));
        pools.insert(key.clone(), Arc::clone(&pool));
        pool
    }
}

/// A multi-model dynamic-batching inference server over a
/// [`PlanRegistry`].
///
/// [`Server::submit_request`] resolves the request's [`ModelKey`] against
/// the registry's active version (lazily compiling at most once per
/// resolved key), validates the packed input against the plan's first
/// stage, and admits the request into its tenant's fair-queueing lane —
/// blocking under [`Admission::Backpressure`], shedding under
/// [`Admission::Shed`]. Worker threads sweep expired/cancelled work out of
/// the queue (dead requests never occupy a batch slot), coalesce same-key
/// requests into shards of at most the compiled batch (`plan.batch()`),
/// execute them with partial-shard support, and deliver per-request logits
/// through [`Ticket`]s.
///
/// Dropping the server (or calling [`Server::shutdown`]) drains the queue:
/// every accepted request still completes (or expires/cancels); late
/// submissions get [`ServeError::ShuttingDown`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start `config.workers` worker threads over `registry`, with the
    /// default [`QueuePolicy`] (blocking backpressure, every tenant at
    /// weight 1 — the PR 2 behaviour).
    pub fn new(registry: PlanRegistry, config: ServeConfig) -> Self {
        Self::with_policy(registry, config, QueuePolicy::backpressure())
    }

    /// Start the server with an explicit admission/fairness [`QueuePolicy`]
    /// and the fault schedule from the environment
    /// ([`FaultPlan::from_env`] — quiet unless built with `fault-inject`
    /// and `APNN_FAULT_SEED`/`APNN_FAULT_PLAN` are set).
    pub fn with_policy(registry: PlanRegistry, config: ServeConfig, policy: QueuePolicy) -> Self {
        Self::with_faults(registry, config, policy, FaultPlan::from_env())
    }

    /// Start the server with an explicit [`FaultPlan`]. Without the
    /// `fault-inject` cargo feature the plan is inert — every injection
    /// site compiles to a constant-false check — so this is exactly
    /// [`Server::with_policy`] plus a deterministic chaos schedule in
    /// builds that opt in (see [`mod@crate::fault`]).
    pub fn with_faults(
        registry: PlanRegistry,
        config: ServeConfig,
        policy: QueuePolicy,
        plan: FaultPlan,
    ) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let faults = Arc::new(Injector::new(plan));
        registry.install_injector(Arc::clone(&faults));
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            registry,
            config,
            policy,
            clock: Arc::new(AtomicU64::new(0)),
            pools: Mutex::new(HashMap::new()),
            faults,
            wire_retries: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("apnn-serve-{i}"))
                    .spawn(move || supervise(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// The plan cache behind this server. Registration takes `&self`, so
    /// models and versions can be added while the server runs:
    /// `server.registry().register("M", build)` then
    /// `server.registry().promote("M", v)`.
    pub fn registry(&self) -> &PlanRegistry {
        &self.shared.registry
    }

    /// Submit one packed image for `key` under the default tenant with no
    /// deadline — compat shim over [`Server::submit_request`], kept so the
    /// PR 2 call sites compile unchanged.
    pub fn submit(&self, key: &ModelKey, image: BitTensor4) -> Result<Ticket, ServeError> {
        self.submit_request(Request::new(key.clone(), image))
    }

    /// Submit one [`Request`] (image by value — no copy on the hot path;
    /// clone at the call site to retain it).
    ///
    /// Under [`Admission::Backpressure`] this blocks while the queue is at
    /// `queue_capacity`. Under [`Admission::Shed`] it never blocks: a full
    /// tenant lane sheds the oldest request whose priority does not exceed
    /// the arrival's (its ticket resolves to [`ServeError::Shed`]), or
    /// refuses the arrival itself with a synchronous `Err(Shed)`.
    ///
    /// The request's key is **resolved** against the registry's active
    /// version here, at admission — a later
    /// [`PlanRegistry::promote`] does not reroute queued work.
    pub fn submit_request(&self, req: Request) -> Result<Ticket, ServeError> {
        let Request {
            key,
            image,
            tenant,
            deadline,
            priority,
        } = req;
        let (resolved, plan) = self.shared.registry.acquire(&key)?;
        validate_input(&plan, &image)?;
        let (ticket, inner) = Ticket::new(Arc::clone(&self.shared.clock));
        let mut state = self.lock_state();
        if matches!(self.shared.policy.admission, Admission::Backpressure) {
            while state.queue.len() >= self.shared.config.queue_capacity && !state.shutdown {
                state = self
                    .shared
                    .space
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if state.shutdown {
            state.stats.rejected += 1;
            return Err(ServeError::ShuttingDown);
        }
        if self.shared.faults.fire(FaultSite::ClockSkew) {
            // A deadline storm: jump the submission clock as if a burst of
            // submissions had raced past this one.
            state.ticks += self.shared.faults.skew_ticks();
            self.shared.clock.store(state.ticks, Ordering::Release);
        }
        state.ticks += 1;
        self.shared.clock.store(state.ticks, Ordering::Release);
        let enqueue_tick = state.ticks;
        if self.shared.faults.fire(FaultSite::AdmitDrop) {
            // Shed the arrival as if its lane had overflowed — accounted
            // exactly like `Pushed::ShedIncoming` so the ledger still
            // balances: submitted == completed+shed+expired+cancelled+poisoned.
            state.stats.tenant(&tenant).submitted += 1;
            state.stats.tenant(&tenant).shed += 1;
            state.stats.shed += 1;
            let err = ServeError::Shed {
                key: resolved.to_string(),
                tenant: tenant.clone(),
            };
            inner.deliver(Err(err.clone()));
            drop(state);
            self.shared.work.notify_all();
            return Err(err);
        }
        // Per-tenant `submitted` counts *offered* load (accepted or shed on
        // arrival) — the shed-rate denominator; the global counter keeps
        // the PR 2 meaning (accepted into the queue).
        state.stats.tenant(&tenant).submitted += 1;
        let queued = QueuedRequest {
            plan,
            key: resolved,
            image,
            ticket: inner,
            tenant: tenant.clone(),
            enqueue_tick,
            expire_tick: deadline.map(|d| enqueue_tick + d),
            priority,
            vft: 0,
        };
        let weight = self.shared.policy.weight_of(&tenant);
        let cap = match self.shared.policy.admission {
            Admission::Backpressure => None,
            Admission::Shed { per_tenant } => Some(per_tenant),
        };
        match state.queue.push(queued, weight, cap) {
            Pushed::Queued => {
                state.stats.submitted += 1;
            }
            Pushed::ShedVictim(victim) => {
                state.stats.submitted += 1;
                state.stats.shed += 1;
                state.stats.tenant(&victim.tenant).shed += 1;
                victim.ticket.deliver(Err(ServeError::Shed {
                    key: victim.key.to_string(),
                    tenant: victim.tenant.clone(),
                }));
            }
            Pushed::ShedIncoming(refused) => {
                state.stats.shed += 1;
                state.stats.tenant(&refused.tenant).shed += 1;
                let err = ServeError::Shed {
                    key: refused.key.to_string(),
                    tenant: refused.tenant.clone(),
                };
                refused.ticket.deliver(Err(err.clone()));
                drop(state);
                self.shared.work.notify_all();
                return Err(err);
            }
        }
        drop(state);
        self.shared.work.notify_all();
        Ok(ticket)
    }

    /// Block until every accepted request has completed and the queue is
    /// empty.
    pub fn wait_idle(&self) {
        let mut state = self.lock_state();
        while !(state.queue.is_empty() && state.in_flight == 0) {
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Snapshot the serving counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        // Aggregate the per-plan workspace pools first (separate lock), so
        // the queue lock is never held across pool inspection.
        let pool_stats = {
            let pools = self.shared.pools.lock().unwrap_or_else(|e| e.into_inner());
            pools.values().fold((0usize, 0usize, 0u64, 0u64), |acc, p| {
                let s = p.stats();
                (
                    acc.0 + 1,
                    acc.1 + s.created,
                    acc.2 + s.checkouts,
                    acc.3 + s.contended,
                )
            })
        };
        let state = self.lock_state();
        state.stats.snapshot(
            state.queue.len(),
            state.in_flight,
            (
                self.shared.registry.compiles(),
                self.shared.registry.hits(),
                self.shared.registry.compiled_labels(),
            ),
            pool_stats,
            (
                self.shared.registry.rollbacks(),
                self.shared.wire_retries.load(Ordering::Relaxed),
            ),
        )
    }

    /// The armed fault schedule, shared with the wire listeners so their
    /// injection sites draw from the same seed.
    pub(crate) fn injector(&self) -> Arc<Injector> {
        Arc::clone(&self.shared.faults)
    }

    /// Record one deduplicated idempotent resubmission observed at the
    /// wire boundary (surfaced as [`ServeStats::client_retries`]).
    pub(crate) fn note_wire_retry(&self) {
        self.shared.wire_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Stop accepting requests, drain the queue (every accepted request
    /// still completes) and join the workers. Equivalent to dropping the
    /// server.
    pub fn shutdown(self) {
        // Drop runs the actual teardown.
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut state = self.lock_state();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Check a request tensor against what the plan's first main stage
/// consumes.
fn validate_input(plan: &CompiledNet, image: &BitTensor4) -> Result<(), ServeError> {
    let (n, h, w, c) = image.shape();
    if n != 1 {
        return Err(ServeError::BadInput(format!(
            "requests carry exactly one image, got a batch of {n}"
        )));
    }
    if let Some((ph, pw, pc, bits, enc)) = plan.input_map_spec() {
        if (h, w, c) != (ph, pw, pc) || image.bits() != bits || image.encoding() != enc {
            return Err(ServeError::BadInput(format!(
                "plan expects {ph}×{pw}×{pc} @ {bits} bits {enc:?}, \
                 got {h}×{w}×{c} @ {} bits {:?}",
                image.bits(),
                image.encoding()
            )));
        }
        return Ok(());
    }
    // Linear-front plan: the engine flattens the map to h·w·c features.
    let first = plan
        .main_stages()
        .next()
        .expect("servable plan has a main stage");
    if let MainKernel::Linear { desc, .. } = &first.kernel {
        if h * w * c != desc.k || image.bits() != desc.x_bits || image.encoding() != desc.x_enc {
            return Err(ServeError::BadInput(format!(
                "plan expects {} features @ {} bits {:?}, got {h}×{w}×{c} @ {} bits {:?}",
                desc.k,
                desc.x_bits,
                desc.x_enc,
                image.bits(),
                image.encoding()
            )));
        }
    }
    Ok(())
}

/// Drop expired and cancelled requests out of the queue, with stats and
/// ticket delivery. Runs under the state lock, before every dispatch
/// decision — dead work never occupies a batch slot. Returns whether
/// anything was removed (the caller re-notifies space/idle waiters).
fn sweep_dead(state: &mut State) -> bool {
    if state.queue.is_empty() {
        return false;
    }
    let now = state.ticks;
    let (expired, cancelled) = state.queue.sweep(now);
    let removed = !expired.is_empty() || !cancelled.is_empty();
    for r in &expired {
        state.stats.expired += 1;
        state.stats.tenant(&r.tenant).expired += 1;
        r.ticket.deliver(Err(ServeError::Expired {
            key: r.key.to_string(),
            tenant: r.tenant.clone(),
            deadline_ticks: r.expire_tick.expect("expired implies a deadline") - r.enqueue_tick,
            waited_ticks: now - r.enqueue_tick,
        }));
    }
    for r in &cancelled {
        // The ticket already resolved (cancel() delivered); only account.
        state.stats.cancelled += 1;
        state.stats.tenant(&r.tenant).cancelled += 1;
    }
    removed
}

/// One worker thread's reusable dispatch state for one plan: a handle to
/// the server-wide [`WorkspacePool`] (cached so the steady-state path
/// never touches the pool-map lock), the coalescing input tensor and the
/// logits buffer. Execution workspaces themselves live in the shared pool
/// — `workspace_creates` proves the population warms to at most
/// `workers × intra_batch_threads` per plan and never grows afterwards.
struct WorkerScratch {
    pool: Arc<WorkspacePool>,
    /// Coalesced request images (reused across batches).
    coalesce: BitTensor4,
    /// `batch × classes` logits of the last execution.
    logits: Vec<i32>,
}

impl WorkerScratch {
    fn new(shared: &Shared, key: &ModelKey, plan: &CompiledNet) -> WorkerScratch {
        WorkerScratch {
            pool: shared.pool_for(key, plan),
            coalesce: BitTensor4::zeros(0, 1, 1, 1, 1, apnn_bitpack::Encoding::ZeroOne),
            logits: Vec::new(),
        }
    }
}

/// Run [`worker_loop`] under supervision: a clean return (shutdown drain)
/// ends the thread; an unwind — an injected [`FaultSite::WorkerKill`], or
/// a defect that escaped the batch-level quarantine — counts one
/// [`ServeStats::worker_restarts`] and re-enters the loop with fresh
/// scratch state. The [`RequeueGuard`] has already restored any dispatched
/// batch to the queue, so a restart never loses accepted work.
fn supervise(shared: &Shared) {
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(()) => return,
            Err(_) => {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.stats.worker_restarts += 1;
                drop(state);
                shared.work.notify_all();
            }
        }
    }
}

/// Armed while a dispatched batch lives outside the queue. On unwind,
/// `Drop` rolls back `in_flight` and restores the batch to its tenants'
/// lanes (original VFT and admission stamps — a restore is not a new
/// arrival); the happy path [`RequeueGuard::disarm`]s it and does its own
/// bookkeeping under the re-acquired lock.
struct RequeueGuard<'a> {
    shared: &'a Shared,
    batch: Option<Vec<QueuedRequest>>,
}

impl RequeueGuard<'_> {
    fn disarm(&mut self) -> Vec<QueuedRequest> {
        self.batch.take().expect("guard disarmed once")
    }
}

impl Drop for RequeueGuard<'_> {
    fn drop(&mut self) {
        let Some(batch) = self.batch.take() else {
            return;
        };
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.in_flight -= batch.len();
        state.queue.restore(batch);
        drop(state);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }
}

/// Execute `batch`, quarantining panics: a panicking execution is bisected
/// until the culprit fails *alone* — that singleton's ticket resolves to
/// [`ServeError::Poisoned`] while every innocent batch-mate re-executes to
/// completion. Returns the condemned batch indices (tickets already
/// resolved); convergence is guaranteed because the injected poison
/// decision is a pure function of a request's admission tick (see
/// [`Injector::poisons`]) and real per-request defects reproduce the same
/// way.
fn execute_with_quarantine(
    shared: &Shared,
    batch: &[QueuedRequest],
    caches: &mut HashMap<ModelKey, WorkerScratch>,
) -> Vec<usize> {
    match try_execute(shared, batch, caches) {
        Ok(()) => Vec::new(),
        Err(why) if batch.len() == 1 => {
            let r = &batch[0];
            r.ticket.deliver(Err(ServeError::Poisoned {
                key: r.key.to_string(),
                tenant: r.tenant.clone(),
                why,
            }));
            vec![0]
        }
        Err(_) => {
            let mid = batch.len() / 2;
            let mut poisoned = execute_with_quarantine(shared, &batch[..mid], caches);
            for i in execute_with_quarantine(shared, &batch[mid..], caches) {
                poisoned.push(mid + i);
            }
            poisoned
        }
    }
}

/// One guarded execution attempt: the worker-side injection sites
/// (transient batch panic, deterministic per-request poison) plus
/// [`execute_batch`], under `catch_unwind`, with a panic mapped to its
/// message. Tickets are first-delivery-wins, so a bisection re-execution
/// can never double-deliver.
fn try_execute(
    shared: &Shared,
    batch: &[QueuedRequest],
    caches: &mut HashMap<ModelKey, WorkerScratch>,
) -> Result<(), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if shared.faults.fire(FaultSite::BatchPanic) {
            panic!("injected batch panic (fault-inject)");
        }
        for r in batch {
            if shared.faults.poisons(r.enqueue_tick) {
                panic!("injected poisoned request (fault-inject)");
            }
        }
        execute_batch(shared, batch, caches)
    }))
    .map_err(|panic| {
        panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string())
    })
}

fn worker_loop(shared: &Shared) {
    // Per-worker, per-plan dispatch state. Keyed by resolved `ModelKey`:
    // the registry guarantees one immutable plan per resolved key for the
    // server's lifetime (retiring a version only evicts the registry cache;
    // queued requests hold their plan `Arc`).
    let mut caches: HashMap<ModelKey, WorkerScratch> = HashMap::new();
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let mut force = false;
    loop {
        if sweep_dead(&mut state) {
            shared.space.notify_all();
        }
        if state.queue.is_empty() {
            if state.in_flight == 0 {
                shared.idle.notify_all();
            }
            if state.shutdown {
                return;
            }
            force = false;
            state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
            continue;
        }
        let shutdown = state.shutdown;
        let now = state.ticks;
        match state
            .queue
            .next_batch(now, shared.config.max_batch_delay, force, shutdown)
        {
            Some(batch) => {
                force = false;
                let dispatch_tick = state.ticks;
                state.in_flight += batch.len();
                drop(state);
                shared.space.notify_all();

                // From here until `disarm`, the batch lives outside the
                // queue. If this thread unwinds (an injected worker kill,
                // or a defect escaping the quarantine below) the guard's
                // `Drop` restores every request to its lane with its
                // original admission stamps and rolls back `in_flight` —
                // no request is lost; `supervise` restarts the worker.
                let mut guard = RequeueGuard {
                    shared,
                    batch: Some(batch),
                };
                if shared.faults.fire(FaultSite::WorkerKill) {
                    panic!("injected worker kill (fault-inject)");
                }
                if shared.faults.fire(FaultSite::BatchStall) {
                    std::thread::sleep(shared.faults.stall_for());
                }
                let poisoned = execute_with_quarantine(
                    shared,
                    guard.batch.as_deref().expect("guard armed"),
                    &mut caches,
                );
                let batch = guard.disarm();

                state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.in_flight -= batch.len();
                state.stats.batches += 1;
                *state.stats.batch_fill.entry(batch.len()).or_insert(0) += 1;
                for (i, r) in batch.iter().enumerate() {
                    if poisoned.contains(&i) {
                        state.stats.poisoned += 1;
                        state.stats.tenant(&r.tenant).poisoned += 1;
                        continue;
                    }
                    let waited = dispatch_tick - r.enqueue_tick;
                    state.stats.completed += 1;
                    state.stats.record_latency(waited);
                    let t = state.stats.tenant(&r.tenant);
                    t.completed += 1;
                    t.record_latency(waited);
                }
                if state.queue.is_empty() && state.in_flight == 0 {
                    shared.idle.notify_all();
                }
            }
            None => {
                // Head group is filling and nothing else is ripe: wait for
                // another submission (which moves the tick clock), shutdown,
                // or the liveness backstop — then force-dispatch. The force
                // only applies to the head the timeout was armed for: if
                // another worker dispatched it meanwhile, the new head gets
                // its own full delay.
                let armed_head = state.queue.head_tick();
                let (g, timeout) = shared
                    .work
                    .wait_timeout(state, backstop(&shared.config))
                    .unwrap_or_else(|e| e.into_inner());
                state = g;
                force = timeout.timed_out() && state.queue.head_tick() == armed_head;
            }
        }
    }
}

/// Coalesce → shard over the pool → scatter: run one batch through the
/// server's shared per-plan [`WorkspacePool`] and resolve its tickets.
fn execute_batch(
    shared: &Shared,
    batch: &[QueuedRequest],
    caches: &mut HashMap<ModelKey, WorkerScratch>,
) {
    let plan = &batch[0].plan;
    let threads = shared.config.intra_batch_threads.max(1);
    let scope = kstats::scope();
    // `contains_key` + `get_mut` instead of `entry`: the hit path (every
    // steady-state batch) must not clone the key.
    if !caches.contains_key(&batch[0].key) {
        caches.insert(
            batch[0].key.clone(),
            WorkerScratch::new(shared, &batch[0].key, plan),
        );
    }
    let cache = caches.get_mut(&batch[0].key).expect("cache just ensured");
    if batch.len() == 1 {
        plan.infer_batched_into(&batch[0].image, &cache.pool, threads, &mut cache.logits);
    } else {
        // Word-level coalescing into the reused input tensor, its backing
        // store reserved at the plan's full coalescing width once so later
        // batches never reallocate; `next_batch` never hands out more than
        // the compiled batch, and every slot is overwritten by a
        // full-stride image copy (so the reshape skips the zeroing pass).
        let (_, h, w, c) = batch[0].image.shape();
        let bits = batch[0].image.bits();
        let enc = batch[0].image.encoding();
        cache
            .coalesce
            .reserve_images(plan.batch().max(1).max(batch.len()), h, w, c, bits);
        cache
            .coalesce
            .reset_for_overwrite(batch.len(), h, w, c, bits, enc);
        for (i, r) in batch.iter().enumerate() {
            cache.coalesce.copy_image_from(&r.image, 0, i);
        }
        plan.infer_batched_into(&cache.coalesce, &cache.pool, threads, &mut cache.logits);
    }
    // The compiled-plan contract: serving performs zero preparation work.
    debug_assert_eq!(scope.autotune_calls(), 0, "serving re-autotuned");
    debug_assert_eq!(scope.weight_prepares(), 0, "serving re-packed weights");
    debug_assert_eq!(scope.row_sum_builds(), 0, "serving rebuilt row sums");
    let classes = plan.classes();
    let logits = &cache.logits;
    debug_assert_eq!(logits.len(), batch.len() * classes);
    for (i, r) in batch.iter().enumerate() {
        r.ticket
            .deliver(Ok(logits[i * classes..(i + 1) * classes].to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apnn_bitpack::{Encoding, Layout, Tensor4};
    use apnn_nn::NetPrecision;

    fn image(seed: u64) -> BitTensor4 {
        let codes = Tensor4::<u32>::from_fn(1, 3, 32, 32, Layout::Nhwc, |_, c, h, w| {
            ((seed as usize + 3 * c + 5 * h + 7 * w) % 256) as u32
        });
        BitTensor4::from_tensor(&codes, 8, Encoding::ZeroOne)
    }

    fn zoo_server(workers: usize, delay: u64) -> Server {
        zoo_server_threads(workers, delay, 1)
    }

    fn zoo_server_threads(workers: usize, delay: u64, intra: usize) -> Server {
        Server::new(
            PlanRegistry::zoo(4, 99),
            ServeConfig {
                queue_capacity: 16,
                max_batch_delay: delay,
                workers,
                intra_batch_threads: intra,
            },
        )
    }

    #[test]
    fn serves_logits_matching_direct_inference() {
        let server = zoo_server(2, 3);
        let key = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| server.submit(&key, image(i)).unwrap())
            .collect();
        let plan = server.registry().get(&key).unwrap();
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(t.wait().unwrap(), plan.infer(&image(i as u64)));
        }
        server.wait_idle();
        let stats = server.stats();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.plan_compiles, 1);
        // The fill histogram accounts for every request exactly once.
        let total: u64 = stats.batch_fill.iter().map(|&(f, c)| f as u64 * c).sum();
        assert_eq!(total, 6);
        // The compat shim lands everything on the default tenant.
        let t = stats.tenant(crate::DEFAULT_TENANT).unwrap();
        assert_eq!(t.submitted, 6);
        assert_eq!(t.completed, 6);
        assert_eq!(t.shed_rate(), 0.0);
    }

    #[test]
    fn intra_batch_sharding_matches_sequential_dispatch_and_pools_warm() {
        // The same traffic at intra_batch_threads ∈ {1, 4} must produce
        // bit-identical logits; the shared pool must warm to a fixed
        // population bounded by workers × intra_batch_threads.
        let key = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        let mut logits_by_mode = Vec::new();
        for intra in [1usize, 4] {
            let server = zoo_server_threads(2, 4, intra);
            let tickets: Vec<Ticket> = (0..12)
                .map(|i| server.submit(&key, image(i)).unwrap())
                .collect();
            let got: Vec<Vec<i32>> = tickets.iter().map(|t| t.wait().unwrap()).collect();
            server.wait_idle();
            let stats = server.stats();
            assert_eq!(stats.workspace_pools, 1);
            assert!(
                stats.workspace_pool_size <= 2 * intra,
                "pool overgrew: {} workspaces for workers=2 × intra={intra}",
                stats.workspace_pool_size
            );
            assert!(stats.workspace_checkouts >= stats.batches);
            logits_by_mode.push(got);
        }
        assert_eq!(logits_by_mode[0], logits_by_mode[1]);
    }

    #[test]
    fn bad_inputs_and_unknown_models_are_rejected_synchronously() {
        let server = zoo_server(1, 0);
        let key = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        // Wrong spatial size.
        let codes = Tensor4::<u32>::from_fn(1, 3, 8, 8, Layout::Nhwc, |_, _, _, _| 0);
        let small = BitTensor4::from_tensor(&codes, 8, Encoding::ZeroOne);
        assert!(matches!(
            server.submit(&key, small),
            Err(ServeError::BadInput(_))
        ));
        // Wrong bit width.
        let codes = Tensor4::<u32>::from_fn(1, 3, 32, 32, Layout::Nhwc, |_, _, _, _| 1);
        let narrow = BitTensor4::from_tensor(&codes, 2, Encoding::ZeroOne);
        assert!(matches!(
            server.submit(&key, narrow),
            Err(ServeError::BadInput(_))
        ));
        let missing = ModelKey::new("nope", NetPrecision::w1a2());
        assert!(matches!(
            server.submit(&missing, image(0)),
            Err(ServeError::UnknownModel(_))
        ));
        // Pinning an unregistered version is a typed error too.
        assert!(matches!(
            server.submit(&key.clone().at_version(3), image(0)),
            Err(ServeError::UnknownVersion { version: 3, .. })
        ));
    }

    #[test]
    fn multi_model_requests_are_grouped_per_key() {
        let server = zoo_server(2, 8);
        let vgg = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        let alex = ModelKey::new("AlexNet-Tiny", NetPrecision::Apnn { w: 2, a: 2 });
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push((vgg.clone(), i, server.submit(&vgg, image(i)).unwrap()));
            tickets.push((alex.clone(), i, server.submit(&alex, image(i)).unwrap()));
        }
        for (key, i, t) in &tickets {
            let plan = server.registry().get(key).unwrap();
            assert_eq!(t.wait().unwrap(), plan.infer(&image(*i)));
        }
        let stats = server.stats();
        assert_eq!(stats.plan_compiles, 2, "one compile per distinct key");
        assert_eq!(stats.completed, 8);
    }

    #[test]
    fn deadlines_expire_queued_work_before_dispatch() {
        // One worker, huge batch delay: the first (undeadlined) request
        // pins the head group while later deadline-carrying requests age
        // out on the tick clock.
        let server = Server::new(
            PlanRegistry::zoo(4, 99),
            ServeConfig {
                queue_capacity: 64,
                max_batch_delay: 1_000,
                workers: 1,
                intra_batch_threads: 1,
            },
        );
        let key = ModelKey::new("AlexNet-Tiny", NetPrecision::w1a2());
        let vgg = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        // Pre-warm both plans: an inline compile inside a submit would
        // stall the clock long enough for the wall-clock liveness backstop
        // to force-dispatch the doomed group before it expires.
        server.registry().get(&key).unwrap();
        server.registry().get(&vgg).unwrap();
        let doomed: Vec<Ticket> = (0..3)
            .map(|i| {
                server
                    .submit_request(Request::new(key.clone(), image(i)).tenant("t").deadline(2))
                    .unwrap()
            })
            .collect();
        // Push the clock past every deadline with traffic that fills its
        // own batches (a different model so it does not rescue the group).
        let fillers: Vec<Ticket> = (0..8)
            .map(|i| server.submit(&vgg, image(i)).unwrap())
            .collect();
        for t in &fillers {
            t.wait().unwrap();
        }
        for t in &doomed {
            assert!(matches!(
                t.wait(),
                Err(ServeError::Expired {
                    deadline_ticks: 2,
                    ..
                })
            ));
        }
        server.wait_idle();
        let stats = server.stats();
        assert_eq!(stats.expired, 3);
        assert_eq!(stats.tenant("t").unwrap().expired, 3);
        // Expired requests are dropped pre-dispatch: the batch-fill
        // histogram accounts only the fillers.
        let total: u64 = stats.batch_fill.iter().map(|&(f, c)| f as u64 * c).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn cancel_resolves_ticket_and_sweeps_queued_work() {
        let server = Server::new(
            PlanRegistry::zoo(4, 99),
            ServeConfig {
                queue_capacity: 64,
                max_batch_delay: 1_000,
                workers: 1,
                intra_batch_threads: 1,
            },
        );
        let key = ModelKey::new("AlexNet-Tiny", NetPrecision::w1a2());
        let t = server
            .submit_request(Request::new(key.clone(), image(0)).tenant("c"))
            .unwrap();
        assert!(t.cancel(), "cancel wins while queued");
        assert!(matches!(t.wait(), Err(ServeError::Cancelled)));
        server.wait_idle();
        let stats = server.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.tenant("c").unwrap().cancelled, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn shedding_bounds_tenant_lanes_and_prefers_older_lower_priority() {
        // No workers consuming: queue_capacity is irrelevant in shed mode;
        // the lane bound is 2. (workers=1 still spawns a worker — block it
        // with max_batch_delay and a never-full head group.)
        let server = Server::with_policy(
            PlanRegistry::zoo(4, 99),
            ServeConfig {
                queue_capacity: 4,
                max_batch_delay: 1_000,
                workers: 1,
                intra_batch_threads: 1,
            },
            QueuePolicy::shedding(2),
        );
        let key = ModelKey::new("AlexNet-Tiny", NetPrecision::w1a2());
        let req = |i: u64, prio: i32| {
            Request::new(key.clone(), image(i))
                .tenant("s")
                .priority(prio)
        };
        let t0 = server.submit_request(req(0, 0)).unwrap();
        let t1 = server.submit_request(req(1, 0)).unwrap();
        // Lane full: the next arrival sheds the *oldest* equal-priority
        // request (t0).
        let t2 = server.submit_request(req(2, 0)).unwrap();
        assert!(matches!(t0.try_get(), Some(Err(ServeError::Shed { .. }))));
        assert!(t1.try_get().is_none(), "t1 still queued");
        // A high-priority arrival sheds the oldest ≤-priority one (t1).
        let t3 = server.submit_request(req(3, 5)).unwrap();
        assert!(matches!(t1.try_get(), Some(Err(ServeError::Shed { .. }))));
        // A low-priority arrival outranked by everything queued sheds
        // itself, synchronously.
        assert!(matches!(
            server.submit_request(req(4, -1)),
            Err(ServeError::Shed { .. })
        ));
        drop((t2, t3));
        let stats = server.stats();
        assert_eq!(stats.shed, 3);
        let t = stats.tenant("s").unwrap();
        assert_eq!(t.submitted, 5, "offered load counts the refused arrival");
        assert_eq!(t.shed, 3);
        assert!((t.shed_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn weighted_fairness_interleaves_backlogged_tenants() {
        // Two backlogged tenants at weights 3:1 on one model with batch 1
        // (registry batch 1 → every dispatch is one request): the dispatch
        // order must favour the heavy tenant ~3:1.
        let server = Server::with_policy(
            PlanRegistry::zoo(1, 99),
            ServeConfig {
                queue_capacity: 64,
                max_batch_delay: 1_000,
                workers: 1,
                intra_batch_threads: 1,
            },
            QueuePolicy::shedding(32)
                .weight("heavy", 3)
                .weight("light", 1),
        );
        let key = ModelKey::new("AlexNet-Tiny", NetPrecision::w1a2());
        // Warm the plan first so admission is cheap and the backlog builds
        // before the worker starts draining.
        server.registry().get(&key).unwrap();
        let mut tickets = Vec::new();
        for i in 0..12 {
            for tenant in ["heavy", "light"] {
                tickets.push((
                    tenant,
                    server
                        .submit_request(Request::new(key.clone(), image(i)).tenant(tenant))
                        .unwrap(),
                ));
            }
        }
        for (_, t) in &tickets {
            t.wait().unwrap();
        }
        server.wait_idle();
        let stats = server.stats();
        let heavy = stats.tenant("heavy").unwrap();
        let light = stats.tenant("light").unwrap();
        assert_eq!(heavy.completed, 12);
        assert_eq!(light.completed, 12);
        // WFQ evidence: the heavy lane never waits meaningfully longer.
        // The exact 3:1 dispatch order is pinned by the queue-level unit
        // test; end-to-end, the submission-tick clock freezes once the
        // last request is admitted, so if the worker only gets scheduled
        // after the whole backlog is queued (common on a loaded
        // single-core runner), every latency collapses to
        // `final_tick - enqueue_tick` no matter who dispatched first —
        // and heavy, submitted before light in each pair, reads exactly
        // one tick higher. Allow that one-tick submission-order artifact;
        // anything beyond it means the heavy lane genuinely queued behind
        // the light one.
        assert!(
            heavy.p50_latency_ticks <= light.p50_latency_ticks + 1,
            "heavy p50 {} > light p50 {} + 1",
            heavy.p50_latency_ticks,
            light.p50_latency_ticks
        );
        assert!(
            heavy.p99_latency_ticks <= light.p99_latency_ticks + 1,
            "heavy p99 {} > light p99 {} + 1",
            heavy.p99_latency_ticks,
            light.p99_latency_ticks
        );
    }

    #[test]
    fn hot_swap_promotes_new_version_and_drains_old() {
        use apnn_nn::models::servable_zoo;
        let server = zoo_server(2, 2);
        let key = ModelKey::new("AlexNet-Tiny", NetPrecision::w1a2());
        // Register v2 on the live server (interior mutability).
        let net = servable_zoo()
            .into_iter()
            .find(|n| n.name == "AlexNet-Tiny")
            .unwrap();
        let v2 = server
            .registry()
            .register("AlexNet-Tiny", move || net.clone());
        assert_eq!(v2, 2);
        // Unpinned traffic still lands on v1 until promotion.
        let before = server.submit(&key, image(0)).unwrap();
        server.registry().promote("AlexNet-Tiny", v2).unwrap();
        let after = server.submit(&key, image(0)).unwrap();
        // Both complete; the v1 plan and v2 plan are separate compiles.
        before.wait().unwrap();
        after.wait().unwrap();
        server.wait_idle();
        let labels = server.registry().compiled_labels();
        assert!(labels.iter().any(|l| l == "AlexNet-Tiny@APNN-w1a2"));
        assert!(labels.iter().any(|l| l == "AlexNet-Tiny@APNN-w1a2#v2"));
        assert_eq!(server.stats().completed, 2);
    }
}
