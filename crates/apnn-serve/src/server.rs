//! The dynamic batcher: bounded queue → coalesce → shard → complete.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use apnn_bitpack::BitTensor4;
use apnn_kernels::stats as kstats;
use apnn_nn::compile::MainKernel;
use apnn_nn::{CompiledNet, WorkspacePool};

use crate::registry::{ModelKey, PlanRegistry};
use crate::stats::{ServeStats, StatsInner};
use crate::ServeError;

/// Liveness backstop base: a worker holding a partial batch whose
/// tick-based delay has not expired re-checks at this cadence (scaled by
/// `max_batch_delay`, see [`backstop`]), so a lone request is never
/// stranded waiting for submissions that will not come.
const PARTIAL_BATCH_BACKSTOP: Duration = Duration::from_millis(1);

/// Wall-clock patience for a filling partial batch. Scales with the
/// configured tick delay so a larger `max_batch_delay` really buys more
/// coalescing under steady (non-burst) load instead of being overridden
/// by a fixed constant; capped so drains stay prompt.
fn backstop(config: &ServeConfig) -> Duration {
    PARTIAL_BATCH_BACKSTOP * (1 + config.max_batch_delay.min(100) as u32)
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded queue size; `submit` blocks (backpressure) once this many
    /// requests are waiting.
    pub queue_capacity: usize,
    /// How many further *submissions* a queued request may wait through
    /// before a partial batch is dispatched anyway. `0` dispatches
    /// greedily; larger values trade queueing latency (in ticks) for
    /// batch fill. A wall-clock backstop of `(1 + max_batch_delay) ms`
    /// (capped at ~100 ms) force-dispatches when submissions stop
    /// arriving, so results never depend on wall time — only how full
    /// the batches ran.
    pub max_batch_delay: u64,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Shards a coalesced batch fans out over inside one dispatch
    /// ([`apnn_nn::CompiledNet::infer_batched_into`]): `1` executes the
    /// batch sequentially on the dispatching worker (the pre-pool
    /// behaviour); `N > 1` cuts it into `N` shards run across the Rayon
    /// pool, each against a workspace checked out of the server's shared
    /// per-plan [`WorkspacePool`]. Logits are bit-identical either way —
    /// the partition never changes per-element accumulation order.
    pub intra_batch_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch_delay: 0,
            workers: 2,
            intra_batch_threads: 1,
        }
    }
}

/// Completion handle for one submitted request.
#[derive(Clone)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

struct TicketInner {
    slot: Mutex<Option<Result<Vec<i32>, ServeError>>>,
    ready: Condvar,
}

impl Ticket {
    fn new() -> (Ticket, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        (
            Ticket {
                inner: Arc::clone(&inner),
            },
            inner,
        )
    }

    /// Block until the request's logits (one `i32` per class) arrive.
    pub fn wait(&self) -> Result<Vec<i32>, ServeError> {
        let mut slot = self.inner.slot.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.as_ref().unwrap().clone()
    }

    /// Non-blocking peek: `Some` once the result is in.
    pub fn try_get(&self) -> Option<Result<Vec<i32>, ServeError>> {
        self.inner
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl TicketInner {
    /// First delivery wins: the panic-recovery path may offer an error to
    /// tickets whose logits already landed.
    fn deliver(&self, result: Result<Vec<i32>, ServeError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }
}

struct Request {
    plan: Arc<CompiledNet>,
    key: ModelKey,
    image: BitTensor4,
    ticket: Arc<TicketInner>,
    enqueue_tick: u64,
}

#[derive(Default)]
struct State {
    queue: VecDeque<Request>,
    /// The serving clock: +1 per accepted submission.
    ticks: u64,
    /// Requests currently executing in workers.
    in_flight: usize,
    shutdown: bool,
    stats: StatsInner,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for submissions / shutdown.
    work: Condvar,
    /// Submitters wait here for queue space (backpressure).
    space: Condvar,
    /// `wait_idle` callers wait here for the queue to fully drain.
    idle: Condvar,
    registry: PlanRegistry,
    config: ServeConfig,
    /// One shared [`WorkspacePool`] per served plan (created on the first
    /// batch for that plan, shared by every worker and every intra-batch
    /// shard). Sized so the population can cover every worker dispatching
    /// at full intra-batch width simultaneously; `workspace_creates` proves
    /// it warms to a fixed size and never grows afterwards.
    pools: Mutex<HashMap<ModelKey, Arc<WorkspacePool>>>,
}

impl Shared {
    /// The shared pool for `key`, created on first use.
    fn pool_for(&self, key: &ModelKey, plan: &CompiledNet) -> Arc<WorkspacePool> {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pool) = pools.get(key) {
            return Arc::clone(pool);
        }
        let max = self.config.workers.max(1) * self.config.intra_batch_threads.max(1);
        let pool = Arc::new(WorkspacePool::new(plan, max));
        pools.insert(key.clone(), Arc::clone(&pool));
        pool
    }
}

/// A multi-model dynamic-batching inference server over a
/// [`PlanRegistry`].
///
/// `submit` resolves (lazily compiling at most once per key) the
/// [`CompiledNet`] for the request's [`ModelKey`], validates the packed
/// input against the plan's first stage, and enqueues the request —
/// blocking when the bounded queue is full. Worker threads coalesce
/// same-key requests into shards of at most the compiled batch
/// (`plan.batch()`), execute them with partial-shard support, and deliver
/// per-request logits through [`Ticket`]s.
///
/// Dropping the server (or calling [`Server::shutdown`]) drains the queue:
/// every accepted request still completes; late submissions get
/// [`ServeError::ShuttingDown`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start `config.workers` worker threads over `registry`.
    pub fn new(registry: PlanRegistry, config: ServeConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            registry,
            config,
            pools: Mutex::new(HashMap::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("apnn-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// The plan cache behind this server.
    pub fn registry(&self) -> &PlanRegistry {
        &self.shared.registry
    }

    /// Submit one packed image for `key` (by value — no copy on the hot
    /// path; clone at the call site to retain it). Blocks while the queue
    /// is at capacity. The returned [`Ticket`] resolves to the request's
    /// logits.
    pub fn submit(&self, key: &ModelKey, image: BitTensor4) -> Result<Ticket, ServeError> {
        let plan = self.shared.registry.get(key)?;
        validate_input(&plan, &image)?;
        let (ticket, inner) = Ticket::new();
        let mut state = self.lock_state();
        while state.queue.len() >= self.shared.config.queue_capacity && !state.shutdown {
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        if state.shutdown {
            state.stats.rejected += 1;
            return Err(ServeError::ShuttingDown);
        }
        state.ticks += 1;
        state.stats.submitted += 1;
        let enqueue_tick = state.ticks;
        state.queue.push_back(Request {
            plan,
            key: key.clone(),
            image,
            ticket: inner,
            enqueue_tick,
        });
        drop(state);
        self.shared.work.notify_all();
        Ok(ticket)
    }

    /// Block until every accepted request has completed and the queue is
    /// empty.
    pub fn wait_idle(&self) {
        let mut state = self.lock_state();
        while !(state.queue.is_empty() && state.in_flight == 0) {
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Snapshot the serving counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        // Aggregate the per-plan workspace pools first (separate lock), so
        // the queue lock is never held across pool inspection.
        let pool_stats = {
            let pools = self.shared.pools.lock().unwrap_or_else(|e| e.into_inner());
            pools.values().fold((0usize, 0usize, 0u64, 0u64), |acc, p| {
                let s = p.stats();
                (
                    acc.0 + 1,
                    acc.1 + s.created,
                    acc.2 + s.checkouts,
                    acc.3 + s.contended,
                )
            })
        };
        let state = self.lock_state();
        state.stats.snapshot(
            state.queue.len(),
            state.in_flight,
            self.shared.registry.compiles(),
            self.shared.registry.hits(),
            self.shared.registry.compiled_labels(),
            pool_stats,
        )
    }

    /// Stop accepting requests, drain the queue (every accepted request
    /// still completes) and join the workers. Equivalent to dropping the
    /// server.
    pub fn shutdown(self) {
        // Drop runs the actual teardown.
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut state = self.lock_state();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Check a request tensor against what the plan's first main stage
/// consumes.
fn validate_input(plan: &CompiledNet, image: &BitTensor4) -> Result<(), ServeError> {
    let (n, h, w, c) = image.shape();
    if n != 1 {
        return Err(ServeError::BadInput(format!(
            "requests carry exactly one image, got a batch of {n}"
        )));
    }
    if let Some((ph, pw, pc, bits, enc)) = plan.input_map_spec() {
        if (h, w, c) != (ph, pw, pc) || image.bits() != bits || image.encoding() != enc {
            return Err(ServeError::BadInput(format!(
                "plan expects {ph}×{pw}×{pc} @ {bits} bits {enc:?}, \
                 got {h}×{w}×{c} @ {} bits {:?}",
                image.bits(),
                image.encoding()
            )));
        }
        return Ok(());
    }
    // Linear-front plan: the engine flattens the map to h·w·c features.
    let first = plan
        .main_stages()
        .next()
        .expect("servable plan has a main stage");
    if let MainKernel::Linear { desc, .. } = &first.kernel {
        if h * w * c != desc.k || image.bits() != desc.x_bits || image.encoding() != desc.x_enc {
            return Err(ServeError::BadInput(format!(
                "plan expects {} features @ {} bits {:?}, got {h}×{w}×{c} @ {} bits {:?}",
                desc.k,
                desc.x_bits,
                desc.x_enc,
                image.bits(),
                image.encoding()
            )));
        }
    }
    Ok(())
}

/// Pull the next dispatchable batch out of the queue, or `None` if every
/// pending group should keep waiting for fill.
///
/// Groups are formed per [`ModelKey`] in arrival order. The group at the
/// head of the queue dispatches when it fills the compiled batch, when its
/// oldest request has waited through `max_batch_delay` submissions, on
/// shutdown, or when `force` is set (backstop timeout). A younger group
/// that already *fills* its compiled batch may overtake a waiting head.
fn pick_batch(state: &mut State, config: &ServeConfig, force: bool) -> Option<Vec<Request>> {
    let head_key = state.queue.front()?.key.clone();
    let head_group = group_indices(&state.queue, &head_key);
    let head_plan_batch = state.queue[head_group[0]].plan.batch().max(1);
    let head_ripe = force
        || state.shutdown
        || head_group.len() >= head_plan_batch
        || state.ticks - state.queue[head_group[0]].enqueue_tick >= config.max_batch_delay;
    if head_ripe {
        return Some(remove_indices(&mut state.queue, &head_group));
    }
    // The head is still filling; look for a younger key with a full batch.
    let mut seen = vec![head_key];
    for i in 0..state.queue.len() {
        let key = &state.queue[i].key;
        if seen.contains(key) {
            continue;
        }
        seen.push(key.clone());
        let group = group_indices(&state.queue, key);
        if group.len() >= state.queue[group[0]].plan.batch().max(1) {
            return Some(remove_indices(&mut state.queue, &group));
        }
    }
    None
}

/// Queue positions of the first `plan.batch()` requests for `key`, in
/// arrival order.
fn group_indices(queue: &VecDeque<Request>, key: &ModelKey) -> Vec<usize> {
    let mut cap = usize::MAX;
    let mut out = Vec::new();
    for (i, r) in queue.iter().enumerate() {
        if r.key == *key {
            if out.is_empty() {
                cap = r.plan.batch().max(1);
            }
            out.push(i);
            if out.len() >= cap {
                break;
            }
        }
    }
    out
}

fn remove_indices(queue: &mut VecDeque<Request>, indices: &[usize]) -> Vec<Request> {
    let mut out = Vec::with_capacity(indices.len());
    // Descending removal keeps earlier indices valid; reverse afterwards to
    // restore arrival order.
    for &i in indices.iter().rev() {
        out.push(queue.remove(i).expect("index in range"));
    }
    out.reverse();
    out
}

/// One worker thread's reusable dispatch state for one plan: a handle to
/// the server-wide [`WorkspacePool`] (cached so the steady-state path
/// never touches the pool-map lock), the coalescing input tensor and the
/// logits buffer. Execution workspaces themselves live in the shared pool
/// — `workspace_creates` proves the population warms to at most
/// `workers × intra_batch_threads` per plan and never grows afterwards.
struct WorkerScratch {
    pool: Arc<WorkspacePool>,
    /// Coalesced request images (reused across batches).
    coalesce: BitTensor4,
    /// `batch × classes` logits of the last execution.
    logits: Vec<i32>,
}

impl WorkerScratch {
    fn new(shared: &Shared, key: &ModelKey, plan: &CompiledNet) -> WorkerScratch {
        WorkerScratch {
            pool: shared.pool_for(key, plan),
            coalesce: BitTensor4::zeros(0, 1, 1, 1, 1, apnn_bitpack::Encoding::ZeroOne),
            logits: Vec::new(),
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Per-worker, per-plan dispatch state. Keyed by `ModelKey`: the
    // registry guarantees one immutable plan per key for the server's
    // lifetime.
    let mut caches: HashMap<ModelKey, WorkerScratch> = HashMap::new();
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    let mut force = false;
    loop {
        if state.queue.is_empty() {
            if state.shutdown {
                return;
            }
            force = false;
            state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
            continue;
        }
        match pick_batch(&mut state, &shared.config, force) {
            Some(batch) => {
                force = false;
                let dispatch_tick = state.ticks;
                state.in_flight += batch.len();
                drop(state);
                shared.space.notify_all();

                // A panicking plan must not strand its clients or leak
                // `in_flight`: catch it, fail the batch's tickets, keep the
                // worker alive.
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_batch(shared, &batch, &mut caches)
                }))
                .err();
                if let Some(panic) = &panicked {
                    let why = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string());
                    for r in &batch {
                        r.ticket
                            .deliver(Err(ServeError::ExecutionFailed(why.clone())));
                    }
                }

                state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.in_flight -= batch.len();
                if panicked.is_some() {
                    state.stats.failed += batch.len() as u64;
                } else {
                    state.stats.completed += batch.len() as u64;
                }
                state.stats.batches += 1;
                *state.stats.batch_fill.entry(batch.len()).or_insert(0) += 1;
                for r in &batch {
                    state.stats.record_latency(dispatch_tick - r.enqueue_tick);
                }
                if state.queue.is_empty() && state.in_flight == 0 {
                    shared.idle.notify_all();
                }
            }
            None => {
                // Head group is filling and nothing else is ripe: wait for
                // another submission (which moves the tick clock), shutdown,
                // or the liveness backstop — then force-dispatch. The force
                // only applies to the head the timeout was armed for: if
                // another worker dispatched it meanwhile, the new head gets
                // its own full delay.
                let armed_head = state.queue.front().map(|r| r.enqueue_tick);
                let (g, timeout) = shared
                    .work
                    .wait_timeout(state, backstop(&shared.config))
                    .unwrap_or_else(|e| e.into_inner());
                state = g;
                force = timeout.timed_out()
                    && state.queue.front().map(|r| r.enqueue_tick) == armed_head;
            }
        }
    }
}

/// Coalesce → shard over the pool → scatter: run one batch through the
/// server's shared per-plan [`WorkspacePool`] and resolve its tickets.
fn execute_batch(
    shared: &Shared,
    batch: &[Request],
    caches: &mut HashMap<ModelKey, WorkerScratch>,
) {
    let plan = &batch[0].plan;
    let threads = shared.config.intra_batch_threads.max(1);
    let scope = kstats::scope();
    // `contains_key` + `get_mut` instead of `entry`: the hit path (every
    // steady-state batch) must not clone the key.
    if !caches.contains_key(&batch[0].key) {
        caches.insert(
            batch[0].key.clone(),
            WorkerScratch::new(shared, &batch[0].key, plan),
        );
    }
    let cache = caches.get_mut(&batch[0].key).expect("cache just ensured");
    if batch.len() == 1 {
        plan.infer_batched_into(&batch[0].image, &cache.pool, threads, &mut cache.logits);
    } else {
        // Word-level coalescing into the reused input tensor, its backing
        // store reserved at the plan's full coalescing width once so later
        // batches never reallocate; `pick_batch` never hands out more than
        // the compiled batch, and every slot is overwritten by a
        // full-stride image copy (so the reshape skips the zeroing pass).
        let (_, h, w, c) = batch[0].image.shape();
        let bits = batch[0].image.bits();
        let enc = batch[0].image.encoding();
        cache
            .coalesce
            .reserve_images(plan.batch().max(1).max(batch.len()), h, w, c, bits);
        cache
            .coalesce
            .reset_for_overwrite(batch.len(), h, w, c, bits, enc);
        for (i, r) in batch.iter().enumerate() {
            cache.coalesce.copy_image_from(&r.image, 0, i);
        }
        plan.infer_batched_into(&cache.coalesce, &cache.pool, threads, &mut cache.logits);
    }
    // The compiled-plan contract: serving performs zero preparation work.
    debug_assert_eq!(scope.autotune_calls(), 0, "serving re-autotuned");
    debug_assert_eq!(scope.weight_prepares(), 0, "serving re-packed weights");
    debug_assert_eq!(scope.row_sum_builds(), 0, "serving rebuilt row sums");
    let classes = plan.classes();
    let logits = &cache.logits;
    debug_assert_eq!(logits.len(), batch.len() * classes);
    for (i, r) in batch.iter().enumerate() {
        r.ticket
            .deliver(Ok(logits[i * classes..(i + 1) * classes].to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apnn_bitpack::{Encoding, Layout, Tensor4};
    use apnn_nn::NetPrecision;

    fn image(seed: u64) -> BitTensor4 {
        let codes = Tensor4::<u32>::from_fn(1, 3, 32, 32, Layout::Nhwc, |_, c, h, w| {
            ((seed as usize + 3 * c + 5 * h + 7 * w) % 256) as u32
        });
        BitTensor4::from_tensor(&codes, 8, Encoding::ZeroOne)
    }

    fn zoo_server(workers: usize, delay: u64) -> Server {
        zoo_server_threads(workers, delay, 1)
    }

    fn zoo_server_threads(workers: usize, delay: u64, intra: usize) -> Server {
        Server::new(
            PlanRegistry::zoo(4, 99),
            ServeConfig {
                queue_capacity: 16,
                max_batch_delay: delay,
                workers,
                intra_batch_threads: intra,
            },
        )
    }

    #[test]
    fn serves_logits_matching_direct_inference() {
        let server = zoo_server(2, 3);
        let key = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| server.submit(&key, image(i)).unwrap())
            .collect();
        let plan = server.registry().get(&key).unwrap();
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(t.wait().unwrap(), plan.infer(&image(i as u64)));
        }
        server.wait_idle();
        let stats = server.stats();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.plan_compiles, 1);
        // The fill histogram accounts for every request exactly once.
        let total: u64 = stats.batch_fill.iter().map(|&(f, c)| f as u64 * c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn intra_batch_sharding_matches_sequential_dispatch_and_pools_warm() {
        // The same traffic at intra_batch_threads ∈ {1, 4} must produce
        // bit-identical logits; the shared pool must warm to a fixed
        // population bounded by workers × intra_batch_threads.
        let key = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        let mut logits_by_mode = Vec::new();
        for intra in [1usize, 4] {
            let server = zoo_server_threads(2, 4, intra);
            let tickets: Vec<Ticket> = (0..12)
                .map(|i| server.submit(&key, image(i)).unwrap())
                .collect();
            let got: Vec<Vec<i32>> = tickets.iter().map(|t| t.wait().unwrap()).collect();
            server.wait_idle();
            let stats = server.stats();
            assert_eq!(stats.workspace_pools, 1);
            assert!(
                stats.workspace_pool_size <= 2 * intra,
                "pool overgrew: {} workspaces for workers=2 × intra={intra}",
                stats.workspace_pool_size
            );
            assert!(stats.workspace_checkouts >= stats.batches);
            logits_by_mode.push(got);
        }
        assert_eq!(logits_by_mode[0], logits_by_mode[1]);
    }

    #[test]
    fn bad_inputs_and_unknown_models_are_rejected_synchronously() {
        let server = zoo_server(1, 0);
        let key = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        // Wrong spatial size.
        let codes = Tensor4::<u32>::from_fn(1, 3, 8, 8, Layout::Nhwc, |_, _, _, _| 0);
        let small = BitTensor4::from_tensor(&codes, 8, Encoding::ZeroOne);
        assert!(matches!(
            server.submit(&key, small),
            Err(ServeError::BadInput(_))
        ));
        // Wrong bit width.
        let codes = Tensor4::<u32>::from_fn(1, 3, 32, 32, Layout::Nhwc, |_, _, _, _| 1);
        let narrow = BitTensor4::from_tensor(&codes, 2, Encoding::ZeroOne);
        assert!(matches!(
            server.submit(&key, narrow),
            Err(ServeError::BadInput(_))
        ));
        let missing = ModelKey::new("nope", NetPrecision::w1a2());
        assert!(matches!(
            server.submit(&missing, image(0)),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn multi_model_requests_are_grouped_per_key() {
        let server = zoo_server(2, 8);
        let vgg = ModelKey::new("VGG-Variant-Tiny", NetPrecision::w1a2());
        let alex = ModelKey::new("AlexNet-Tiny", NetPrecision::Apnn { w: 2, a: 2 });
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push((vgg.clone(), i, server.submit(&vgg, image(i)).unwrap()));
            tickets.push((alex.clone(), i, server.submit(&alex, image(i)).unwrap()));
        }
        for (key, i, t) in &tickets {
            let plan = server.registry().get(key).unwrap();
            assert_eq!(t.wait().unwrap(), plan.infer(&image(*i)));
        }
        let stats = server.stats();
        assert_eq!(stats.plan_compiles, 2, "one compile per distinct key");
        assert_eq!(stats.completed, 8);
    }
}
