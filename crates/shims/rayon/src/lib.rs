//! Offline shim for the `rayon` crate.
//!
//! The vendored registry is unavailable in this build environment, so this
//! workspace ships a minimal, dependency-free implementation of the rayon
//! API surface the APNN-TC codebase actually uses:
//!
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)` — the kernel inner
//!   loops (APMM rows, APConv pixels, baseline GEMM rows) and the
//!   batch-shard fan-out of `apnn_nn::CompiledNet::infer_batched_into`;
//! * [`current_num_threads`] — pool sizing for batch sharding.
//!
//! Parallelism is real and, like upstream rayon, runs on a **persistent
//! global worker pool**: `current_num_threads() - 1` workers are spawned
//! lazily on the first parallel call and then reused for every later one.
//! Dispatch is allocation-free — the job is published as a type-erased
//! borrowed closure, participants claim chunks through an atomic counter,
//! and completion is signalled over a condvar — so the steady-state
//! zero-heap-allocation contract of the serving tier (`tests/zero_alloc.rs`)
//! holds *through* parallel sections, not just around them. Semantics match
//! rayon for the supported calls: each chunk is visited exactly once, with
//! its index; a panic in any chunk propagates to the caller after the
//! dispatch drains.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads the shim pool will use (including the calling
/// thread). Like real rayon's global pool, `RAYON_NUM_THREADS` overrides
/// the core count (read once; the CI test matrix pins it to 1 and 4 so
/// threading bugs cannot hide behind one default width).
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The subset of `rayon::prelude` this workspace imports.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Lazily-built parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

/// [`ParChunksMut`] with chunk indices attached.
pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T> ParChunksMut<'a, T> {
    /// Attach the chunk index, matching `rayon`'s `enumerate()`.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            slice: self.slice,
            chunk: self.chunk,
        }
    }

    /// Visit every chunk (without indices) in parallel.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Raw slice base shared with pool workers; chunk claims are disjoint by
/// construction (each index is handed out exactly once by the atomic
/// counter), so concurrent `&mut [T]` reconstruction is sound.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<'a, T> EnumerateParChunksMut<'a, T> {
    /// Visit every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn((usize, &mut [T])) + Sync,
    {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Visit every `(index, chunk)` pair in parallel, threading a
    /// per-participant state built by `init` (matching rayon's
    /// `for_each_init`): each participant builds one state and reuses it
    /// across every chunk it claims — the hook the kernels use to hoist a
    /// stack accumulator tile out of the per-chunk work.
    pub fn for_each_init<I, S, F>(self, init: I, f: F)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        let len = self.slice.len();
        let chunk = self.chunk;
        if len == 0 {
            return;
        }
        let n_chunks = len.div_ceil(chunk);
        if n_chunks <= 1 || current_num_threads() <= 1 || pool::in_pool() {
            let mut state = init();
            for (i, c) in self.slice.chunks_mut(chunk).enumerate() {
                f(&mut state, (i, c));
            }
            return;
        }
        let base = SendPtr(self.slice.as_mut_ptr());
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Work-stealing body run by the caller and every pool worker: claim
        // chunk indices until the counter runs past the end. No allocation
        // beyond whatever `init` itself performs, once per participant.
        let work = move || {
            let mut state = init();
            loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let start = i * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: `i` is claimed exactly once, so `[start, end)`
                // ranges never overlap between participants; `base` outlives
                // the dispatch because `pool::run` joins every participant
                // before returning.
                let s =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                f(&mut state, (i, s));
            }
        };
        pool::run(&work);
    }
}

/// The persistent worker pool behind every parallel dispatch.
mod pool {
    use std::cell::Cell;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

    thread_local! {
        /// Set on pool worker threads (and on the caller while it executes
        /// a dispatch). Nested parallel calls run inline instead of
        /// deadlocking on the single job slot — real rayon gets the same
        /// effect from its shared work-stealing pool.
        static IN_POOL: Cell<bool> = const { Cell::new(false) };
    }

    /// Is the current thread already inside a pool dispatch?
    pub(crate) fn in_pool() -> bool {
        IN_POOL.get()
    }

    /// Type-erased borrowed job closure. The raw pointer is only
    /// dereferenced between publication and the `running == 0`
    /// acknowledgement, during which the caller keeps the referent alive.
    #[derive(Clone, Copy)]
    struct Job(*const (dyn Fn() + Sync + 'static));
    unsafe impl Send for Job {}

    struct Ctrl {
        /// Incremented once per published job; workers run each epoch once.
        epoch: u64,
        job: Option<Job>,
        /// Workers still executing the current epoch.
        running: usize,
        /// First worker panic of the current epoch (rethrown by the caller).
        panic: Option<Box<dyn std::any::Any + Send>>,
    }

    struct Pool {
        ctrl: Mutex<Ctrl>,
        /// Workers wait here for a new epoch.
        work: Condvar,
        /// The caller waits here for `running` to reach zero.
        done: Condvar,
        /// Serializes dispatches; a busy pool makes callers run inline.
        submit: Mutex<()>,
        workers: usize,
    }

    fn lock(m: &Mutex<Ctrl>) -> MutexGuard<'_, Ctrl> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The global pool: `current_num_threads() - 1` detached workers,
    /// spawned once on first use (`None` when one thread means no pool).
    fn get() -> Option<&'static Pool> {
        static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
        *POOL.get_or_init(|| {
            let workers = crate::current_num_threads().saturating_sub(1);
            if workers == 0 {
                return None;
            }
            let pool: &'static Pool = Box::leak(Box::new(Pool {
                ctrl: Mutex::new(Ctrl {
                    epoch: 0,
                    job: None,
                    running: 0,
                    panic: None,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                submit: Mutex::new(()),
                workers,
            }));
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("apnn-rayon-{i}"))
                    .spawn(move || worker_loop(pool))
                    .expect("spawn shim pool worker");
            }
            Some(pool)
        })
    }

    fn worker_loop(pool: &'static Pool) {
        IN_POOL.set(true);
        let mut seen = 0u64;
        loop {
            let job = {
                let mut c = lock(&pool.ctrl);
                while c.epoch == seen {
                    c = pool.work.wait(c).unwrap_or_else(|e| e.into_inner());
                }
                seen = c.epoch;
                c.job.expect("epoch advanced without a job").0
            };
            // SAFETY: the publishing caller keeps the closure alive until
            // every worker acknowledged this epoch (running == 0) below.
            let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job)() }));
            let mut c = lock(&pool.ctrl);
            if let Err(payload) = result {
                if c.panic.is_none() {
                    c.panic = Some(payload);
                }
            }
            c.running -= 1;
            if c.running == 0 {
                pool.done.notify_all();
            }
        }
    }

    /// Run `work` on the caller plus every pool worker (each participant is
    /// expected to claim work items from a shared atomic counter). Falls
    /// back to running `work` inline — still visiting every item — when the
    /// pool is unavailable, busy with another dispatch, or the caller is
    /// itself a pool worker. Steady-state dispatches perform zero heap
    /// allocations; panics from any participant propagate after the
    /// dispatch drains.
    pub(crate) fn run(work: &(dyn Fn() + Sync)) {
        if in_pool() {
            work();
            return;
        }
        let Some(pool) = get() else {
            work();
            return;
        };
        let Ok(guard) = pool.submit.try_lock() else {
            // Another thread owns the pool right now (e.g. two serve
            // workers dispatching concurrently); degrade to inline rather
            // than queueing — the counter-claim body visits every item
            // either way.
            work();
            return;
        };
        // SAFETY: lifetime erasure only — `run` does not return until every
        // worker finished the epoch, so the borrow outlives all uses.
        let job = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                work as *const (dyn Fn() + Sync),
            )
        });
        {
            let mut c = lock(&pool.ctrl);
            c.job = Some(job);
            c.epoch += 1;
            c.running = pool.workers;
        }
        pool.work.notify_all();
        IN_POOL.set(true);
        let caller_result = panic::catch_unwind(AssertUnwindSafe(work));
        IN_POOL.set(false);
        let worker_panic = {
            let mut c = lock(&pool.ctrl);
            while c.running > 0 {
                c = pool.done.wait(c).unwrap_or_else(|e| e.into_inner());
            }
            c.job = None;
            c.panic.take()
        };
        drop(guard);
        if let Err(payload) = caller_result {
            panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            panic::resume_unwind(payload);
        }
    }
}

/// Parallel mutable chunking over slices — the `rayon::prelude` entry point.
pub trait ParallelSliceMut<T> {
    /// Split into chunks of `chunk` elements (last may be shorter), visited
    /// in parallel.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be nonzero");
        ParChunksMut { slice: self, chunk }
    }
}

impl<T> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_init_builds_one_state_per_participant() {
        let mut v = vec![0u32; 64];
        let inits = std::sync::atomic::AtomicUsize::new(0);
        v.par_chunks_mut(4).enumerate().for_each_init(
            || {
                inits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                [0u32; 8]
            },
            |scratch, (i, chunk)| {
                scratch[0] = i as u32 + 1;
                for c in chunk.iter_mut() {
                    *c = scratch[0];
                }
            },
        );
        for (pos, &x) in v.iter().enumerate() {
            assert_eq!(x, (pos / 4) as u32 + 1);
        }
        // One state per dispatch participant (caller + pool workers), not
        // one per chunk.
        assert!(inits.load(std::sync::atomic::Ordering::Relaxed) <= current_num_threads() + 1);
    }

    #[test]
    fn chunks_visited_exactly_once_with_indices() {
        let mut v = vec![0u32; 1037];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for e in chunk.iter_mut() {
                *e += i as u32 + 1;
            }
        });
        for (pos, e) in v.iter().enumerate() {
            assert_eq!(*e, (pos / 10) as u32 + 1);
        }
    }

    #[test]
    fn small_slices_run_inline() {
        let mut v = vec![1i32; 3];
        v.par_chunks_mut(8)
            .for_each(|c| c.iter_mut().for_each(|e| *e = 2));
        assert_eq!(v, vec![2, 2, 2]);
    }

    #[test]
    fn nested_parallelism_runs_inner_level_inline() {
        // Outer par over 8 chunks, each running an inner par over its 64
        // elements: every element must still be visited exactly once, with
        // the inner level inlined on the worker thread (no cores² spawns).
        let mut v = vec![0u32; 8 * 64];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            chunk.par_chunks_mut(4).enumerate().for_each(|(j, inner)| {
                for e in inner.iter_mut() {
                    *e += (i * 100 + j) as u32 + 1;
                }
            });
        });
        for (pos, e) in v.iter().enumerate() {
            let (i, j) = (pos / 64, (pos % 64) / 4);
            assert_eq!(*e, (i * 100 + j) as u32 + 1, "element {pos}");
        }
    }

    #[test]
    fn repeated_dispatches_reuse_the_pool() {
        // Many rounds through the persistent pool: every round must visit
        // every chunk exactly once (exercises epoch/wakeup bookkeeping).
        for round in 0..200u32 {
            let mut v = vec![0u32; 64];
            v.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
                for e in chunk.iter_mut() {
                    *e = round * 100 + i as u32;
                }
            });
            for (pos, e) in v.iter().enumerate() {
                assert_eq!(*e, round * 100 + (pos / 4) as u32, "round {round}");
            }
        }
    }

    #[test]
    fn concurrent_dispatchers_all_complete() {
        // Several threads fighting over the single job slot: losers of the
        // try_lock degrade to inline execution; all must finish with every
        // chunk visited exactly once.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut v = vec![0u64; 512];
                    v.par_chunks_mut(16).enumerate().for_each(|(i, chunk)| {
                        for e in chunk.iter_mut() {
                            *e += (t * 1000 + i) as u64 + 1;
                        }
                    });
                    for (pos, e) in v.iter().enumerate() {
                        assert_eq!(*e, (t * 1000 + pos / 16) as u64 + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn panics_propagate_to_the_dispatching_caller() {
        let caught = std::panic::catch_unwind(|| {
            let mut v = vec![0u32; 128];
            v.par_chunks_mut(8).enumerate().for_each(|(i, _)| {
                if i == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        });
        assert!(caught.is_err(), "panic must cross the dispatch");
        // The pool survives a panicking job.
        let mut v = vec![0u32; 64];
        v.par_chunks_mut(4)
            .for_each(|c| c.iter_mut().for_each(|e| *e = 1));
        assert!(v.iter().all(|&e| e == 1));
    }
}
