//! Offline shim for the `rayon` crate.
//!
//! The vendored registry is unavailable in this build environment, so this
//! workspace ships a minimal, dependency-free implementation of the rayon
//! API surface the APNN-TC codebase actually uses:
//!
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)` — the kernel inner
//!   loops (APMM rows, APConv pixels, baseline GEMM rows);
//! * [`current_num_threads`] — pool sizing for batch sharding.
//!
//! Parallelism is real: chunks are distributed round-robin over
//! `std::thread::scope` workers, one per available core. Semantics match
//! rayon for the supported calls (each chunk is visited exactly once, with
//! its index; panics propagate).

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads the shim pool will use. Like real rayon's
/// global pool, `RAYON_NUM_THREADS` overrides the core count (read once;
/// the CI test matrix pins it to 1 and 4 so threading bugs cannot hide
/// behind one default width).
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The subset of `rayon::prelude` this workspace imports.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Lazily-built parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

/// [`ParChunksMut`] with chunk indices attached.
pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T> ParChunksMut<'a, T> {
    /// Attach the chunk index, matching `rayon`'s `enumerate()`.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            slice: self.slice,
            chunk: self.chunk,
        }
    }

    /// Visit every chunk (without indices) in parallel.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

impl<'a, T> EnumerateParChunksMut<'a, T> {
    /// Visit every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk).enumerate().collect();
        run_indexed(chunks, &f);
    }
}

thread_local! {
    /// Set inside a worker thread of this pool. Nested parallel calls run
    /// inline instead of spawning cores² OS threads — real rayon gets this
    /// for free from its shared work-stealing pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Distribute `items` round-robin over scoped worker threads.
fn run_indexed<T, F>(items: Vec<(usize, &mut [T])>, f: &F)
where
    T: Send,
    F: Fn((usize, &mut [T])) + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 || IN_POOL.get() {
        for item in items {
            f(item);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (pos, item) in items.into_iter().enumerate() {
        buckets[pos % workers].push(item);
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                IN_POOL.set(true);
                for item in bucket {
                    f(item);
                }
            });
        }
    });
}

/// Parallel mutable chunking over slices — the `rayon::prelude` entry point.
pub trait ParallelSliceMut<T> {
    /// Split into chunks of `chunk` elements (last may be shorter), visited
    /// in parallel.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be nonzero");
        ParChunksMut { slice: self, chunk }
    }
}

impl<T> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_visited_exactly_once_with_indices() {
        let mut v = vec![0u32; 1037];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for e in chunk.iter_mut() {
                *e += i as u32 + 1;
            }
        });
        for (pos, e) in v.iter().enumerate() {
            assert_eq!(*e, (pos / 10) as u32 + 1);
        }
    }

    #[test]
    fn small_slices_run_inline() {
        let mut v = vec![1i32; 3];
        v.par_chunks_mut(8)
            .for_each(|c| c.iter_mut().for_each(|e| *e = 2));
        assert_eq!(v, vec![2, 2, 2]);
    }

    #[test]
    fn nested_parallelism_runs_inner_level_inline() {
        // Outer par over 8 chunks, each running an inner par over its 64
        // elements: every element must still be visited exactly once, with
        // the inner level inlined on the worker thread (no cores² spawns).
        let mut v = vec![0u32; 8 * 64];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            chunk.par_chunks_mut(4).enumerate().for_each(|(j, inner)| {
                for e in inner.iter_mut() {
                    *e += (i * 100 + j) as u32 + 1;
                }
            });
        });
        for (pos, e) in v.iter().enumerate() {
            let (i, j) = (pos / 64, (pos % 64) / 4);
            assert_eq!(*e, (i * 100 + j) as u32 + 1, "element {pos}");
        }
    }
}
