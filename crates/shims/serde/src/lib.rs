//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on simulator structs to
//! mark them wire-ready, but no serializer backend (serde_json, bincode, …)
//! is compiled anywhere, so marker traits plus no-op derives are sufficient
//! to keep the code building in this offline environment.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
