//! Offline shim for the `proptest` crate.
//!
//! Reimplements the subset of the proptest API this workspace's property
//! tests use — [`Strategy`] with `prop_map`/`prop_flat_map`, ranges, tuples,
//! [`Just`], `any::<T>()`, `collection::vec`, the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros, and `ProptestConfig::with_cases` —
//! as a deterministic random-sampling harness. No shrinking: a failing case
//! reports its inputs (via the assertion message) and the per-test RNG is
//! seeded from the test name, so failures reproduce exactly.
//!
//! The `PROPTEST_CASES` environment variable overrides the per-test case
//! count — including explicit `with_cases(n)` values, which is
//! *stronger* than upstream proptest (where the env var only reseeds the
//! default and explicit configs win). The inversion is deliberate: this
//! workspace pins small per-test counts to keep PR builds fast, and the
//! nightly `deep-proptest` CI job raises every harness to 2048 cases
//! through the env var without touching the sources.

/// Strategy combinators and sampling.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map the produced value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Produce a dependent strategy from the value, then sample it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Box the strategy (object form).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe boxed strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the macro's boxed options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next() >> 40) as $t / (1u64 << 24) as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next() as u32
        }
    }
    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next() as u32 as i32
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next() as i64
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next() as u8
        }
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths acceptable to [`vec()`].
    pub trait IntoLen {
        /// Draw a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for core::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end);
            self.start + (rng.next() as usize) % (self.end - self.start)
        }
    }

    impl IntoLen for core::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next() as usize) % (self.end() - self.start() + 1)
        }
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Build a `Vec` strategy (fixed or ranged length).
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// `Option` strategies (upstream `proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Upstream defaults to 75% `Some`.
            if rng.next().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `Option<T>` strategy: `None` a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Test-runner plumbing: config + deterministic RNG.
pub mod test_runner {
    /// Runner configuration (only `cases` is meaningful here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases — unless `PROPTEST_CASES`
        /// overrides it (deliberately stronger than upstream, where
        /// explicit configs beat the env var; see the crate docs).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// The `PROPTEST_CASES` override, read once per process.
    fn env_cases() -> Option<u32> {
        static CASES: std::sync::OnceLock<Option<u32>> = std::sync::OnceLock::new();
        *CASES.get_or_init(|| {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|&n| n > 0)
        })
    }

    /// Explicit test-case failures (`return Err(TestCaseError::fail(..))`).
    ///
    /// The shim's case bodies return `Result<(), String>`, so `fail`
    /// produces the error `String` directly.
    #[derive(Debug)]
    pub struct TestCaseError;

    impl TestCaseError {
        /// Build a failure message.
        pub fn fail(msg: impl core::fmt::Display) -> String {
            msg.to_string()
        }
    }

    /// Deterministic splitmix64 stream, seeded per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so each test has a stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<$crate::strategy::BoxedStrategy<_>> =
            ::std::vec::Vec::new();
        $( options.push(::std::boxed::Box::new($strategy)); )+
        $crate::strategy::Union::new(options)
    }};
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "prop_assert_ne! failed at {}:{} (both {:?})",
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Skip the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Define property tests: each function body runs once per sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::sample(&($strat), &mut rng);
                            )+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(msg) = outcome {
                        panic!("case {case} of {}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}
