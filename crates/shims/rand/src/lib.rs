//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the APNN-TC workspace uses —
//! `SmallRng::seed_from_u64`, `Rng::gen::<bool>()`, `Rng::gen_range` over
//! integer/float ranges, and `SliceRandom::shuffle` — on top of a
//! dependency-free splitmix64/xoshiro256** generator. All draws are
//! deterministic per seed, which is what every caller in this repo relies
//! on (reproducible datasets, weights, and benches).

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit draw.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the only construction path used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Values drawable with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable with [`Rng::gen_range`]. The element type `T` is a
/// trait parameter (not an associated type) so it can be inferred from the
/// call site's expected output, matching rand 0.8's inference behavior.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing generator trait.
pub trait Rng: RngCore + Sized {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Small fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — matching rand's `SmallRng` role (fast, not crypto).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the repo never needs a cryptographic generator.
    pub type StdRng = SmallRng;
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling à la rand 0.8.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Uniformly pick one element.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-127i8..=127);
            assert!((-127..=127).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn bools_are_mixed_and_shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&heads), "{heads}");
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
