//! Offline shim for the `criterion` crate.
//!
//! Provides just enough of the Criterion 0.5 API for this workspace's
//! `harness = false` benches to compile and produce useful wall-clock
//! numbers under `cargo bench`: benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and an iteration timer that reports
//! the median per-iteration time. No statistics machinery, no plots.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id, matching Criterion's display form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level bench context handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// A named group of benchmark cases.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set a throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark case.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            median: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{:<40} {:>12.3?} /iter",
            self.name,
            id.to_string(),
            b.median
        );
        self
    }

    /// Run one benchmark case with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

/// Throughput annotations (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-case iteration timer.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    median: Duration,
}

impl Bencher {
    /// Time `f`, recording the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: how many iterations fit the budget?
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < self.warm_up_time || calib_iters == 0 {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed() / calib_iters.max(1) as u32;
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed() / iters_per_sample);
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}
