//! Offline shim for the `bytes` crate.
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` (no refcounted
//! zero-copy slicing — the model-artifact serializer in `apnn-quant` only
//! appends and reads sequentially) and implements the little-endian
//! [`Buf`]/[`BufMut`] accessors it calls.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Wrap an owned vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian writers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential little-endian readers over an advancing cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy out `dst.len()` bytes and advance. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"APNN");
        buf.put_u16_le(1);
        buf.put_u8(2);
        buf.put_u32_le(77);
        buf.put_f32_le(0.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"APNN");
        assert_eq!(r.get_u16_le(), 1);
        assert_eq!(r.get_u8(), 2);
        assert_eq!(r.get_u32_le(), 77);
        assert_eq!(r.get_f32_le(), 0.5);
        assert_eq!(r.remaining(), 0);
    }
}
