//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace only *tags* types as serializable (no serializer backend is
//! compiled anywhere), so empty expansions keep every `#[derive(Serialize,
//! Deserialize)]` compiling without the real proc-macro stack.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
