//! Naive full-precision oracles for correctness testing.
//!
//! Every optimized kernel in this crate is validated against these loops.
//! They operate on *decoded arithmetic values* (after applying operand
//! encodings), so they are also the ground truth for the encoding cases.

/// Row-major `Y[m×n] = W[m×k] · Xᵀ[n×k]` over i32 values.
///
/// `x` is stored N×K (each row of `x` is a column of the logical X), matching
/// the B-fragment layout used by every kernel in this crate.
pub fn gemm_i32(w: &[i32], x: &[i32], m: usize, n: usize, k: usize) -> Vec<i32> {
    assert_eq!(w.len(), m * k);
    assert_eq!(x.len(), n * k);
    let mut y = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc += w[i * k + kk] * x[j * k + kk];
            }
            y[i * n + j] = acc;
        }
    }
    y
}

/// Direct 2-D convolution over decoded i32 values.
///
/// * `input`: NHWC order, shape `(batch, h, w, cin)`.
/// * `weights`: `(cout, kh, kw, cin)` order.
/// * Out-of-frame positions contribute **zero** regardless of encoding —
///   the semantics the paper's input-aware padding (§4.2(b)) preserves.
///
/// Returns NHWC `(batch, oh, ow, cout)`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i32(
    input: &[i32],
    weights: &[i32],
    batch: usize,
    h: usize,
    w: usize,
    cin: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<i32> {
    assert_eq!(input.len(), batch * h * w * cin);
    assert_eq!(weights.len(), cout * kh * kw * cin);
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let mut out = vec![0i32; batch * oh * ow * cout];
    for b in 0..batch {
        for oy in 0..oh {
            for ox in 0..ow {
                for co in 0..cout {
                    let mut acc = 0i32;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue; // out-of-frame contributes zero
                            }
                            let (iy, ix) = (iy as usize, ix as usize);
                            for ci in 0..cin {
                                let xv = input[((b * h + iy) * w + ix) * cin + ci];
                                let wv = weights[((co * kh + ky) * kw + kx) * cin + ci];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[((b * oh + oy) * ow + ox) * cout + co] = acc;
                }
            }
        }
    }
    out
}

/// Output spatial size of a convolution.
pub fn conv_out_dim(in_dim: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (in_dim + 2 * pad - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_identity() {
        // W = I (2x2), X stored as N×K with rows = columns of X.
        let w = vec![1, 0, 0, 1];
        let x = vec![3, 5, 7, 11]; // X col0 = (3,5), col1 = (7,11)
        let y = gemm_i32(&w, &x, 2, 2, 2);
        // Y[i][j] = W_row_i · X_col_j
        assert_eq!(y, vec![3, 7, 5, 11]);
    }

    #[test]
    fn gemm_known_product() {
        // W = [[1,2],[3,4]], X (logical K×N) = [[5,6],[7,8]] => x rows (cols) =
        // [5,7] and [6,8].
        let w = vec![1, 2, 3, 4];
        let x = vec![5, 7, 6, 8];
        let y = gemm_i32(&w, &x, 2, 2, 2);
        assert_eq!(y, vec![19, 22, 43, 50]);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with single channel passes input through.
        let input: Vec<i32> = (0..9).collect();
        let weights = vec![1];
        let out = conv2d_i32(&input, &weights, 1, 3, 3, 1, 1, 1, 1, 1, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_padding_zero_semantics() {
        // 3x3 all-ones kernel over 2x2 all-ones input with pad=1:
        // corners see 4 valid positions, output = count of valid cells.
        let input = vec![1i32; 4];
        let weights = vec![1i32; 9];
        let out = conv2d_i32(&input, &weights, 1, 2, 2, 1, 1, 3, 3, 1, 1);
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn conv_stride_two() {
        let input: Vec<i32> = (0..16).collect(); // 4x4
        let weights = vec![1i32]; // 1x1
        let out = conv2d_i32(&input, &weights, 1, 4, 4, 1, 1, 1, 1, 2, 0);
        assert_eq!(out, vec![0, 2, 8, 10]);
    }

    #[test]
    fn out_dim_math() {
        assert_eq!(conv_out_dim(224, 3, 1, 1), 224);
        assert_eq!(conv_out_dim(224, 11, 4, 2), 55); // AlexNet conv1
        assert_eq!(conv_out_dim(16, 3, 1, 1), 16);
    }
}
