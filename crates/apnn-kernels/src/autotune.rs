//! Performance model + tile-size autotuner (paper §4.3).
//!
//! Two antagonistic quantities drive the search:
//!
//! * **TLP** (Eq. 3) — `pM·qN / (bm·bn)`, the number of thread blocks. More
//!   blocks ⇒ better SM utilization, especially for the small GEMMs typical
//!   of NN layers.
//! * **CI** (Eq. 4) — `2·bm·bn / (bm + bn)`, tensor-core MACs per bit of
//!   global traffic for one block tile. Larger tiles ⇒ more data reuse.
//!
//! The heuristic (§4.3.2): enumerate `bm, bn ∈ {16, 32, 64, 128}`, order by
//! TLP, and take the highest-CI configuration whose TLP is still above the
//! threshold `T = 64`; if nothing clears the threshold, fall back to the
//! maximum-TLP configuration.

use crate::apmm::TileConfig;

/// Candidate block-tile edge sizes (§4.3.2).
pub const TILE_CANDIDATES: [usize; 4] = [16, 32, 64, 128];

/// TLP threshold `T` (§4.3.2, set empirically by the paper).
pub const TLP_THRESHOLD: f64 = 64.0;

/// Thread-level parallelism of a tiling (Eq. 3): the grid size over the
/// batched `pM × qN` output space.
pub fn thread_level_parallelism(m: usize, n: usize, p: u32, q: u32, bm: usize, bn: usize) -> f64 {
    (p as f64 * m as f64) * (q as f64 * n as f64) / (bm as f64 * bn as f64)
}

/// Compute intensity of a block tile (Eq. 4): `2·bm·bn / (bm + bn)`.
pub fn compute_intensity(bm: usize, bn: usize) -> f64 {
    2.0 * bm as f64 * bn as f64 / (bm + bn) as f64
}

/// Pick a tile configuration for an `M×N×K` problem at `p×q` bits.
///
/// `k` only enters through `bk`, which stays fixed at 128 (§4.3.1: CI is
/// independent of `bk`; a small `bk` leaves shared memory for `bm`, `bn`).
pub fn autotune(m: usize, n: usize, _k: usize, p: u32, q: u32) -> TileConfig {
    crate::stats::count_autotune();
    let mut candidates: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(16);
    for &bm in &TILE_CANDIDATES {
        for &bn in &TILE_CANDIDATES {
            let tlp = thread_level_parallelism(m, n, p, q, bm, bn);
            let ci = compute_intensity(bm, bn);
            candidates.push((bm, bn, tlp, ci));
        }
    }
    // Priority queue by TLP (descending) — realized as a sort for clarity.
    candidates.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap()
            .then(b.3.partial_cmp(&a.3).unwrap())
    });

    let above: Vec<_> = candidates.iter().filter(|c| c.2 >= TLP_THRESHOLD).collect();
    let chosen = if above.is_empty() {
        // Nothing clears the threshold: stick with the max-TLP combination.
        candidates[0]
    } else {
        // Pop through the queue, keeping the best-CI combination that still
        // satisfies TLP ≥ T (ties broken toward higher TLP by sort order).
        **above
            .iter()
            .max_by(|a, b| a.3.partial_cmp(&b.3).unwrap())
            .unwrap()
    };
    TileConfig::new(chosen.0, chosen.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlp_formula_matches_eq3() {
        // p=1, M=64, q=2, N=1024, bm=32, bn=64 -> 64*2048/2048 = 64.
        let tlp = thread_level_parallelism(64, 1024, 1, 2, 32, 64);
        assert_eq!(tlp, 64.0);
    }

    #[test]
    fn ci_formula_matches_eq4() {
        assert_eq!(compute_intensity(64, 64), 64.0);
        assert!((compute_intensity(32, 64) - 2.0 * 32.0 * 64.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn ci_monotone_in_tile_size() {
        assert!(compute_intensity(32, 32) > compute_intensity(16, 16));
        assert!(compute_intensity(128, 128) > compute_intensity(64, 64));
    }

    #[test]
    fn large_matrices_get_large_tiles() {
        // Huge batched space: every candidate clears T, so max-CI (128×128)
        // wins.
        let t = autotune(4096, 4096, 1024, 2, 2);
        assert_eq!((t.bm, t.bn), (128, 128));
    }

    #[test]
    fn small_matrices_get_small_tiles() {
        // Tiny problem: nothing reaches TLP=64, fall back to max TLP (16×16).
        let t = autotune(16, 16, 128, 1, 1);
        assert_eq!((t.bm, t.bn), (16, 16));
    }

    #[test]
    fn paper_fc_example_balances_tlp_and_ci() {
        // The Table 4 workload: M=64 (batch), N=K=1024, w1a2.
        // TLP>=64 candidates peak at CI for (bm,bn)=(32,64) or (64,32).
        let t = autotune(64, 1024, 1024, 1, 2);
        let tlp = thread_level_parallelism(64, 1024, 1, 2, t.bm, t.bn);
        assert!(tlp >= TLP_THRESHOLD);
        assert_eq!(t.bm * t.bn, 2048, "chose {:?}", (t.bm, t.bn));
    }

    #[test]
    fn batching_raises_tlp_and_unlocks_bigger_tiles() {
        // Same M,N but more planes => more batched parallelism => the tuner
        // can afford larger tiles (this is the point of §4.1(a)).
        let t_small = autotune(64, 256, 512, 1, 1);
        let t_large = autotune(64, 256, 512, 8, 8);
        assert!(
            t_large.bm * t_large.bn >= t_small.bm * t_small.bn,
            "{t_small:?} vs {t_large:?}"
        );
    }
}
