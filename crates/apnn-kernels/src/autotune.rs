//! Performance model + tile-size autotuner (paper §4.3).
//!
//! Two antagonistic quantities drive the search:
//!
//! * **TLP** (Eq. 3) — `pM·qN / (bm·bn)`, the number of thread blocks. More
//!   blocks ⇒ better SM utilization, especially for the small GEMMs typical
//!   of NN layers.
//! * **CI** (Eq. 4) — `2·bm·bn / (bm + bn)`, tensor-core MACs per bit of
//!   global traffic for one block tile. Larger tiles ⇒ more data reuse.
//!
//! The heuristic (§4.3.2): enumerate `bm, bn ∈ {16, 32, 64, 128}`, order by
//! TLP, and take the highest-CI configuration whose TLP is still above the
//! threshold `T = 64`; if nothing clears the threshold, fall back to the
//! maximum-TLP configuration.

use crate::apmm::TileConfig;

/// Candidate block-tile edge sizes (§4.3.2).
pub const TILE_CANDIDATES: [usize; 4] = [16, 32, 64, 128];

/// TLP threshold `T` (§4.3.2, set empirically by the paper).
pub const TLP_THRESHOLD: f64 = 64.0;

/// Thread-level parallelism of a tiling (Eq. 3): the grid size over the
/// batched `pM × qN` output space.
pub fn thread_level_parallelism(m: usize, n: usize, p: u32, q: u32, bm: usize, bn: usize) -> f64 {
    (p as f64 * m as f64) * (q as f64 * n as f64) / (bm as f64 * bn as f64)
}

/// Compute intensity of a block tile (Eq. 4): `2·bm·bn / (bm + bn)`.
pub fn compute_intensity(bm: usize, bn: usize) -> f64 {
    2.0 * bm as f64 * bn as f64 / (bm + bn) as f64
}

/// Pick a tile configuration for an `M×N×K` problem at `p×q` bits.
///
/// `k` only enters through `bk`, which stays fixed at 128 (§4.3.1: CI is
/// independent of `bk`; a small `bk` leaves shared memory for `bm`, `bn`).
pub fn autotune(m: usize, n: usize, _k: usize, p: u32, q: u32) -> TileConfig {
    crate::stats::count_autotune();
    let mut candidates: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(16);
    for &bm in &TILE_CANDIDATES {
        for &bn in &TILE_CANDIDATES {
            let tlp = thread_level_parallelism(m, n, p, q, bm, bn);
            let ci = compute_intensity(bm, bn);
            candidates.push((bm, bn, tlp, ci));
        }
    }
    // Priority queue by TLP (descending) — realized as a sort for clarity.
    candidates.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap()
            .then(b.3.partial_cmp(&a.3).unwrap())
    });

    let above: Vec<_> = candidates.iter().filter(|c| c.2 >= TLP_THRESHOLD).collect();
    let chosen = if above.is_empty() {
        // Nothing clears the threshold: stick with the max-TLP combination.
        candidates[0]
    } else {
        // Pop through the queue, keeping the best-CI combination that still
        // satisfies TLP ≥ T (ties broken toward higher TLP by sort order).
        **above
            .iter()
            .max_by(|a, b| a.3.partial_cmp(&b.3).unwrap())
            .unwrap()
    };
    TileConfig::new(chosen.0, chosen.1)
}

// ---------------------------------------------------------------------------
// CPU microkernel tiling.
// ---------------------------------------------------------------------------

/// Column-block candidates for the CPU popcount microkernel (bounded by
/// [`MAX_JB`], the stack accumulator tile's column capacity).
pub const JB_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

/// Largest legal microkernel column block.
pub const MAX_JB: usize = 8;

/// K-block candidates, in 64-bit words per round.
pub const KB_CANDIDATES: [usize; 4] = [8, 16, 32, 64];

/// L1 budget (bytes) one microkernel block may stream per K round — half a
/// typical 32 KiB L1D, leaving room for the accumulator tile and the
/// caller's locals.
pub const MICRO_L1_BUDGET: usize = 16 * 1024;

/// Register/cache tiling of the CPU popcount microkernel
/// (`apnn_kernels::micro`): `jb` B-side columns (batch columns for APMM,
/// output channels for APConv) share each loaded A-side word, and K is
/// walked in `kb`-word blocks so every streamed chunk stays L1-resident
/// while all `pa·pb` plane pairs consume it. Chosen per layer at compile
/// time by [`autotune_micro`]; any value is *exact* (the accumulators are
/// i32), so tiling only moves throughput, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroTile {
    /// Column-block width (B-side rows sharing one A-side load).
    pub jb: usize,
    /// K-block depth in 64-bit words.
    pub kb: usize,
}

impl MicroTile {
    /// Clamp to the ranges the kernels' stack tiles are sized for
    /// (`1..=MAX_JB` columns, at least one K word per round).
    pub fn sanitized(self) -> MicroTile {
        MicroTile {
            jb: self.jb.clamp(1, MAX_JB),
            kb: self.kb.max(1),
        }
    }
}

/// Pick the microkernel tile for a problem with `n_cols` B-side columns,
/// `k_words` packed words per row and `pa × pb` bit planes.
///
/// Heuristic (the CPU analogue of §4.3.2's two antagonistic quantities):
/// the column block wants to be as wide as possible — every extra column
/// amortizes the A-side loads once more — but the block's per-round
/// working set `(pa + jb·pb)·kb` words must stay inside the L1 budget, and
/// a block wider than the problem wastes tile slots. The K block takes
/// whatever budget the column block leaves. Deterministic and pure, so
/// compiled plans are reproducible.
pub fn autotune_micro(n_cols: usize, k_words: usize, pa: u32, pb: u32) -> MicroTile {
    crate::stats::count_micro_tune();
    let (pa, pb) = (pa.max(1) as usize, pb.max(1) as usize);
    let budget_words = MICRO_L1_BUDGET / 8;
    let mut jb = 1;
    for &cand in &JB_CANDIDATES {
        let fits_l1 = (pa + cand * pb) * KB_CANDIDATES[0] <= budget_words;
        // One column beyond the problem width is allowed to round up.
        if fits_l1 && (cand / 2) < n_cols.max(1) {
            jb = cand;
        }
    }
    let mut kb = KB_CANDIDATES[0];
    for &cand in &KB_CANDIDATES {
        if (pa + jb * pb) * cand <= budget_words {
            kb = cand;
        }
    }
    // Short reductions need no blocking at all: one round covers them.
    if k_words > 0 {
        kb = kb.min(k_words.next_power_of_two().max(KB_CANDIDATES[0]));
    }
    MicroTile { jb, kb }.sanitized()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlp_formula_matches_eq3() {
        // p=1, M=64, q=2, N=1024, bm=32, bn=64 -> 64*2048/2048 = 64.
        let tlp = thread_level_parallelism(64, 1024, 1, 2, 32, 64);
        assert_eq!(tlp, 64.0);
    }

    #[test]
    fn ci_formula_matches_eq4() {
        assert_eq!(compute_intensity(64, 64), 64.0);
        assert!((compute_intensity(32, 64) - 2.0 * 32.0 * 64.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn ci_monotone_in_tile_size() {
        assert!(compute_intensity(32, 32) > compute_intensity(16, 16));
        assert!(compute_intensity(128, 128) > compute_intensity(64, 64));
    }

    #[test]
    fn large_matrices_get_large_tiles() {
        // Huge batched space: every candidate clears T, so max-CI (128×128)
        // wins.
        let t = autotune(4096, 4096, 1024, 2, 2);
        assert_eq!((t.bm, t.bn), (128, 128));
    }

    #[test]
    fn small_matrices_get_small_tiles() {
        // Tiny problem: nothing reaches TLP=64, fall back to max TLP (16×16).
        let t = autotune(16, 16, 128, 1, 1);
        assert_eq!((t.bm, t.bn), (16, 16));
    }

    #[test]
    fn paper_fc_example_balances_tlp_and_ci() {
        // The Table 4 workload: M=64 (batch), N=K=1024, w1a2.
        // TLP>=64 candidates peak at CI for (bm,bn)=(32,64) or (64,32).
        let t = autotune(64, 1024, 1024, 1, 2);
        let tlp = thread_level_parallelism(64, 1024, 1, 2, t.bm, t.bn);
        assert!(tlp >= TLP_THRESHOLD);
        assert_eq!(t.bm * t.bn, 2048, "chose {:?}", (t.bm, t.bn));
    }

    #[test]
    fn micro_tile_is_deterministic_and_bounded() {
        for (n_cols, k_words, pa, pb) in [
            (1usize, 1usize, 1u32, 1u32),
            (3, 2, 1, 2),
            (64, 72, 2, 2),
            (512, 4096, 8, 8),
            (0, 0, 1, 1),
        ] {
            let a = autotune_micro(n_cols, k_words, pa, pb);
            let b = autotune_micro(n_cols, k_words, pa, pb);
            assert_eq!(a, b, "selection must be pure");
            assert!(JB_CANDIDATES.contains(&a.jb));
            assert!((1..=MAX_JB).contains(&a.jb));
            assert!(a.kb >= 1);
            // The per-round working set respects the L1 budget.
            assert!((pa.max(1) as usize + a.jb * pb.max(1) as usize) * a.kb <= MICRO_L1_BUDGET / 8);
        }
    }

    #[test]
    fn micro_tile_narrow_problems_get_narrow_blocks() {
        // One output column cannot use an 8-wide block...
        assert_eq!(autotune_micro(1, 64, 2, 2).jb, 1);
        // ...but rounding up to cover a ragged tail is allowed.
        assert!(autotune_micro(3, 64, 2, 2).jb >= 2);
        assert_eq!(autotune_micro(1024, 64, 2, 2).jb, MAX_JB);
    }

    #[test]
    fn micro_tune_moves_the_stats_counter() {
        let s = crate::stats::scope();
        let _ = autotune_micro(64, 64, 2, 2);
        assert_eq!(s.micro_tunes(), 1);
    }

    #[test]
    fn batching_raises_tlp_and_unlocks_bigger_tiles() {
        // Same M,N but more planes => more batched parallelism => the tuner
        // can afford larger tiles (this is the point of §4.1(a)).
        let t_small = autotune(64, 256, 512, 1, 1);
        let t_large = autotune(64, 256, 512, 8, 8);
        assert!(
            t_large.bm * t_large.bn >= t_small.bm * t_small.bn,
            "{t_small:?} vs {t_large:?}"
        );
    }
}
