//! Performance model + tile-size autotuner (paper §4.3).
//!
//! Two antagonistic quantities drive the search:
//!
//! * **TLP** (Eq. 3) — `pM·qN / (bm·bn)`, the number of thread blocks. More
//!   blocks ⇒ better SM utilization, especially for the small GEMMs typical
//!   of NN layers.
//! * **CI** (Eq. 4) — `2·bm·bn / (bm + bn)`, tensor-core MACs per bit of
//!   global traffic for one block tile. Larger tiles ⇒ more data reuse.
//!
//! The heuristic (§4.3.2): enumerate `bm, bn ∈ {16, 32, 64, 128}`, order by
//! TLP, and take the highest-CI configuration whose TLP is still above the
//! threshold `T = 64`; if nothing clears the threshold, fall back to the
//! maximum-TLP configuration.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Mutex;

use apnn_bitpack::{Encoding, PopcntArm};
use apnn_sim::BmmaOp;

use crate::apmm::TileConfig;
use crate::select::EmulationCase;

/// Candidate block-tile edge sizes (§4.3.2).
pub const TILE_CANDIDATES: [usize; 4] = [16, 32, 64, 128];

/// TLP threshold `T` (§4.3.2, set empirically by the paper).
pub const TLP_THRESHOLD: f64 = 64.0;

/// Thread-level parallelism of a tiling (Eq. 3): the grid size over the
/// batched `pM × qN` output space.
pub fn thread_level_parallelism(m: usize, n: usize, p: u32, q: u32, bm: usize, bn: usize) -> f64 {
    (p as f64 * m as f64) * (q as f64 * n as f64) / (bm as f64 * bn as f64)
}

/// Compute intensity of a block tile (Eq. 4): `2·bm·bn / (bm + bn)`.
pub fn compute_intensity(bm: usize, bn: usize) -> f64 {
    2.0 * bm as f64 * bn as f64 / (bm + bn) as f64
}

/// Pick a tile configuration for an `M×N×K` problem at `p×q` bits.
///
/// `k` only enters through `bk`, which stays fixed at 128 (§4.3.1: CI is
/// independent of `bk`; a small `bk` leaves shared memory for `bm`, `bn`).
pub fn autotune(m: usize, n: usize, _k: usize, p: u32, q: u32) -> TileConfig {
    crate::stats::count_autotune();
    let mut candidates: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(16);
    for &bm in &TILE_CANDIDATES {
        for &bn in &TILE_CANDIDATES {
            let tlp = thread_level_parallelism(m, n, p, q, bm, bn);
            let ci = compute_intensity(bm, bn);
            candidates.push((bm, bn, tlp, ci));
        }
    }
    // Priority queue by TLP (descending) — realized as a sort for clarity.
    candidates.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap()
            .then(b.3.partial_cmp(&a.3).unwrap())
    });

    let above: Vec<_> = candidates.iter().filter(|c| c.2 >= TLP_THRESHOLD).collect();
    let chosen = if above.is_empty() {
        // Nothing clears the threshold: stick with the max-TLP combination.
        candidates[0]
    } else {
        // Pop through the queue, keeping the best-CI combination that still
        // satisfies TLP ≥ T (ties broken toward higher TLP by sort order).
        **above
            .iter()
            .max_by(|a, b| a.3.partial_cmp(&b.3).unwrap())
            .unwrap()
    };
    TileConfig::new(chosen.0, chosen.1)
}

// ---------------------------------------------------------------------------
// CPU microkernel tiling.
// ---------------------------------------------------------------------------

/// Column-block candidates for the CPU popcount microkernel (bounded by
/// [`MAX_JB`], the stack accumulator tile's column capacity).
pub const JB_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

/// Largest legal microkernel column block.
pub const MAX_JB: usize = 8;

/// K-block candidates, in 64-bit words per round.
pub const KB_CANDIDATES: [usize; 4] = [8, 16, 32, 64];

/// L1 budget (bytes) one microkernel block may stream per K round — half a
/// typical 32 KiB L1D, leaving room for the accumulator tile and the
/// caller's locals.
pub const MICRO_L1_BUDGET: usize = 16 * 1024;

/// Register/cache tiling of the CPU popcount microkernel
/// (`apnn_kernels::micro`): `jb` B-side columns (batch columns for APMM,
/// output channels for APConv) share each loaded A-side word, and K is
/// walked in `kb`-word blocks so every streamed chunk stays L1-resident
/// while all `pa·pb` plane pairs consume it. Chosen per layer at compile
/// time by [`autotune_micro`]; any value is *exact* (the accumulators are
/// i32), so tiling only moves throughput, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroTile {
    /// Column-block width (B-side rows sharing one A-side load).
    pub jb: usize,
    /// K-block depth in 64-bit words.
    pub kb: usize,
}

impl MicroTile {
    /// Clamp to the ranges the kernels' stack tiles are sized for
    /// (`1..=MAX_JB` columns, at least one K word per round).
    pub fn sanitized(self) -> MicroTile {
        MicroTile {
            jb: self.jb.clamp(1, MAX_JB),
            kb: self.kb.max(1),
        }
    }
}

/// Pick the microkernel tile for a problem with `n_cols` B-side columns,
/// `k_words` packed words per row and `pa × pb` bit planes.
///
/// Heuristic (the CPU analogue of §4.3.2's two antagonistic quantities):
/// the column block wants to be as wide as possible — every extra column
/// amortizes the A-side loads once more — but the block's per-round
/// working set `(pa + jb·pb)·kb` words must stay inside the L1 budget, and
/// a block wider than the problem wastes tile slots. The K block takes
/// whatever budget the column block leaves. Deterministic and pure, so
/// compiled plans are reproducible.
pub fn autotune_micro(n_cols: usize, k_words: usize, pa: u32, pb: u32) -> MicroTile {
    crate::stats::count_micro_tune();
    micro_heuristic(n_cols, k_words, pa, pb)
}

/// The pure L1-budget model behind [`autotune_micro`] (no counter, no
/// memo): the fallback answer for deterministic mode and the seed
/// candidate for the measured grid.
fn micro_heuristic(n_cols: usize, k_words: usize, pa: u32, pb: u32) -> MicroTile {
    let (pa, pb) = (pa.max(1) as usize, pb.max(1) as usize);
    let budget_words = MICRO_L1_BUDGET / 8;
    let mut jb = 1;
    for &cand in &JB_CANDIDATES {
        let fits_l1 = (pa + cand * pb) * KB_CANDIDATES[0] <= budget_words;
        // One column beyond the problem width is allowed to round up.
        if fits_l1 && (cand / 2) < n_cols.max(1) {
            jb = cand;
        }
    }
    let mut kb = KB_CANDIDATES[0];
    for &cand in &KB_CANDIDATES {
        if (pa + jb * pb) * cand <= budget_words {
            kb = cand;
        }
    }
    // Short reductions need no blocking at all: one round covers them.
    if k_words > 0 {
        kb = kb.min(k_words.next_power_of_two().max(KB_CANDIDATES[0]));
    }
    MicroTile { jb, kb }.sanitized()
}

// ---------------------------------------------------------------------------
// Measurement-driven, memoized tile selection.
// ---------------------------------------------------------------------------

/// How [`select_micro`] answers a memo miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroSelect {
    /// Time the candidate `(JB, KB)` grid on the selected popcount arm and
    /// keep the fastest tile (the default). Counted by
    /// [`crate::stats::micro_benches`].
    Measure,
    /// Pin the pure L1-budget heuristic answer — fully deterministic, for
    /// golden regeneration and reproducible CI plans. (Results are exact
    /// either way; this pins the *plan*, e.g. `Debug` output.)
    Heuristic,
}

/// The active [`MicroSelect`] mode: a programmatic override
/// ([`force_micro_select`]) wins, else the `APNN_MICRO_SELECT` environment
/// variable (`measure` / `heuristic`, read once), else
/// [`MicroSelect::Measure`].
pub fn micro_select_mode() -> MicroSelect {
    match MICRO_SELECT_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => return MicroSelect::Measure,
        2 => return MicroSelect::Heuristic,
        _ => {}
    }
    static ENV_MODE: std::sync::OnceLock<MicroSelect> = std::sync::OnceLock::new();
    *ENV_MODE.get_or_init(
        || match std::env::var("APNN_MICRO_SELECT").ok().as_deref() {
            None => MicroSelect::Measure,
            Some(s) if s.trim().eq_ignore_ascii_case("heuristic") => MicroSelect::Heuristic,
            Some(s) if s.trim().eq_ignore_ascii_case("measure") => MicroSelect::Measure,
            Some(s) => {
                eprintln!(
                    "apnn-kernels: unknown APNN_MICRO_SELECT value `{s}` \
                     (accepted: `measure`, `heuristic`); using measured selection"
                );
                MicroSelect::Measure
            }
        },
    )
}

/// Force the [`select_micro`] mode for this process (`None` restores the
/// environment/default behavior) — the test/bench knob, so suites can pin
/// determinism without mutating the environment.
pub fn force_micro_select(mode: Option<MicroSelect>) {
    let v = match mode {
        None => 0,
        Some(MicroSelect::Measure) => 1,
        Some(MicroSelect::Heuristic) => 2,
    };
    MICRO_SELECT_OVERRIDE.store(v, std::sync::atomic::Ordering::Relaxed);
}

static MICRO_SELECT_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// The memo key: a layer shape as the microkernel sees it, plus the arm it
/// will run on and the selection mode that produced the entry (so a pinned
/// heuristic answer never masquerades as a measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MicroKey {
    n_cols: usize,
    k_words: usize,
    pa: u32,
    pb: u32,
    arm: PopcntArm,
    measured: bool,
}

/// A memoized selection: the winning tile, and — for measured entries —
/// its per-word microbenchmark time, retained as the autotuner's measured
/// cost oracle ([`stage_cost`]).
#[derive(Debug, Clone, Copy)]
struct MicroEntry {
    tile: MicroTile,
    ns_per_word: Option<f64>,
}

/// Hard cap on resident entries across the process-global microkernel
/// memos ([`select_micro`] selections and [`stage_cost`] probes, each
/// bounded separately at this cap). Far above any real model zoo's
/// distinct-shape count, so steady-state compilation never evicts; a
/// pathological shape stream (fuzzers, synthetic sweeps) stays bounded via
/// insertion-order (FIFO) eviction.
pub const MICRO_MEMO_CAP: usize = 1024;

/// A shape-keyed memo with FIFO eviction at [`MICRO_MEMO_CAP`] entries.
struct BoundedMemo<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: Eq + Hash + Copy, V: Copy> BoundedMemo<K, V> {
    fn new() -> Self {
        BoundedMemo {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, k: &K) -> Option<V> {
        self.map.get(k).copied()
    }

    fn insert(&mut self, k: K, v: V) {
        if self.map.insert(k, v).is_none() {
            self.order.push_back(k);
            while self.map.len() > MICRO_MEMO_CAP {
                match self.order.pop_front() {
                    Some(old) => {
                        self.map.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

fn micro_memo() -> &'static Mutex<BoundedMemo<MicroKey, MicroEntry>> {
    static MEMO: std::sync::OnceLock<Mutex<BoundedMemo<MicroKey, MicroEntry>>> =
        std::sync::OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(BoundedMemo::new()))
}

/// A stage-cost probe key: the microkernel shape plus the exact `(op, arm,
/// tile)` the probe timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CostKey {
    n_cols: usize,
    k_words: usize,
    pa: u32,
    pb: u32,
    op: BmmaOp,
    arm: PopcntArm,
    jb: usize,
    kb: usize,
}

fn cost_memo() -> &'static Mutex<BoundedMemo<CostKey, f64>> {
    static MEMO: std::sync::OnceLock<Mutex<BoundedMemo<CostKey, f64>>> = std::sync::OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(BoundedMemo::new()))
}

fn update_resident_gauge() {
    let n = micro_memo().lock().unwrap().len() + cost_memo().lock().unwrap().len();
    crate::stats::set_micro_memo_resident(n as u64);
}

/// Pick the microkernel tile for a layer shape on a popcount arm — the one
/// entry point both the plan compiler and the ad-hoc kernels use.
///
/// The answer is **memoized process-wide by shape** (`n_cols`, `k_words`,
/// `pa × pb`, `arm`): the first query for a distinct shape selects a tile
/// (one [`crate::stats::micro_tunes`] tick; in [`MicroSelect::Measure`]
/// mode also one [`crate::stats::micro_benches`] tick for the timed grid
/// sweep), every repeat is a lock-and-lookup with no counter movement.
/// This is the CPU analogue of the paper's measured AP-BMMA fragment
/// tiling (§4.3 measures, not models, what a fragment shape is worth), and
/// it is safe precisely because every tile is exact — measurement can only
/// change throughput.
pub fn select_micro(n_cols: usize, k_words: usize, pa: u32, pb: u32, arm: PopcntArm) -> MicroTile {
    let mode = micro_select_mode();
    let key = MicroKey {
        n_cols,
        k_words,
        pa,
        pb,
        arm,
        measured: mode == MicroSelect::Measure,
    };
    if let Some(entry) = micro_memo().lock().unwrap().get(&key) {
        return entry.tile;
    }
    let entry = match mode {
        MicroSelect::Heuristic => MicroEntry {
            tile: autotune_micro(n_cols, k_words, pa, pb),
            ns_per_word: None,
        },
        MicroSelect::Measure => {
            crate::stats::count_micro_tune();
            crate::stats::count_micro_bench();
            let (tile, ns_per_word) = bench_micro_grid(n_cols, k_words, pa, pb, arm);
            MicroEntry {
                tile,
                ns_per_word: Some(ns_per_word),
            }
        }
    };
    micro_memo().lock().unwrap().insert(key, entry);
    update_resident_gauge();
    entry.tile
}

/// A layer shape as the popcount microkernel sees it — the key of the
/// measured cost oracle ([`stage_cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageShape {
    /// B-side columns (batch columns for APMM, output channels for APConv).
    pub n_cols: usize,
    /// Packed 64-bit words per row of the reduction.
    pub k_words: usize,
    /// A-side bit planes.
    pub pa: u32,
    /// B-side bit planes.
    pub pb: u32,
}

/// Measured per-word microkernel cost (nanoseconds per streamed 64-bit
/// word) for running `shape` through the emulation `case`'s boolean op on
/// `arm` with the microkernel tile `tile` — the precision autotuner's cost
/// oracle.
///
/// The probe runs the same synthetic-operand microbenchmark that
/// [`select_micro`]'s measured mode sweeps, but for the *single* requested
/// candidate, and memoizes the answer process-wide in a bounded map (same
/// [`MICRO_MEMO_CAP`] / FIFO-eviction policy as the tile memo; resident
/// entries of both are reported by [`crate::stats::micro_memo_resident`]).
/// Repeat probes for a seen `(shape, op, arm, tile)` are a lock-and-lookup.
pub fn stage_cost(shape: StageShape, case: EmulationCase, arm: PopcntArm, tile: MicroTile) -> f64 {
    let op = match case {
        EmulationCase::AndUnsigned
        | EmulationCase::AndWeightTransformed
        | EmulationCase::AndActivationTransformed => BmmaOp::And,
        EmulationCase::XorSignedBinary
        | EmulationCase::XorDerivedUnsigned
        | EmulationCase::XorDerivedWeightTransformed
        | EmulationCase::XorDerivedActivationTransformed => BmmaOp::Xor,
    };
    let tile = tile.sanitized();
    let key = CostKey {
        n_cols: shape.n_cols,
        k_words: shape.k_words,
        pa: shape.pa,
        pb: shape.pb,
        op,
        arm,
        jb: tile.jb,
        kb: tile.kb,
    };
    if let Some(ns) = cost_memo().lock().unwrap().get(&key) {
        return ns;
    }
    // A measured tile selection for this shape already timed its winning
    // candidate with `And` — reuse that measurement instead of re-probing.
    // The memo lookup is bound to a plain Option *before* the branch so the
    // guard is dropped here: `update_resident_gauge` re-locks this mutex,
    // and an `if let` scrutinee guard would still be live in the body.
    if op == BmmaOp::And {
        let micro_key = MicroKey {
            n_cols: shape.n_cols,
            k_words: shape.k_words,
            pa: shape.pa,
            pb: shape.pb,
            arm,
            measured: true,
        };
        let reused = micro_memo()
            .lock()
            .unwrap()
            .get(&micro_key)
            .filter(|entry| entry.tile == tile)
            .and_then(|entry| entry.ns_per_word);
        if let Some(ns) = reused {
            cost_memo().lock().unwrap().insert(key, ns);
            update_resident_gauge();
            return ns;
        }
    }
    crate::stats::count_micro_bench();
    let operands = BenchOperands::synthesize(shape.k_words, shape.pa, shape.pb);
    let ns = operands.time_candidate(op, arm, tile.jb, tile.kb);
    cost_memo().lock().unwrap().insert(key, ns);
    update_resident_gauge();
    ns
}

/// Words a single measured candidate streams through the microkernel —
/// big enough for stable relative ordering, small enough that a whole
/// 16-candidate sweep costs single-digit milliseconds at compile time.
/// Debug builds shrink it: the ordering is meaningless there anyway (tests
/// only need the plumbing) and unoptimized popcounts are ~20× slower.
const MICRO_BENCH_WORDS: usize = if cfg!(debug_assertions) {
    8_192
} else {
    262_144
};

/// Longest synthetic reduction used for measurement, in words. Real `K`s
/// beyond this behave identically per word (the working set is already
/// far outside L1), so the cap only bounds measurement cost.
const MICRO_BENCH_MAX_KW: usize = 512;

/// Synthetic microbenchmark operands for one microkernel shape, shared by
/// the grid sweep ([`bench_micro_grid`]) and the single-candidate cost
/// probe ([`stage_cost`]). Deterministic contents.
struct BenchOperands {
    a: apnn_bitpack::BitPlanes,
    b: apnn_bitpack::BitPlanes,
}

impl BenchOperands {
    fn synthesize(k_words: usize, pa: u32, pb: u32) -> Self {
        let (pa_n, pb_n) = (pa.clamp(1, 8), pb.clamp(1, 8));
        let kw = k_words.clamp(1, MICRO_BENCH_MAX_KW);
        let k_bits = kw * apnn_bitpack::word::WORD_BITS;
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let a_codes: Vec<u32> = (0..k_bits)
            .map(|_| next() as u32 & ((1 << pa_n) - 1))
            .collect();
        let b_codes: Vec<u32> = (0..MAX_JB * k_bits)
            .map(|_| next() as u32 & ((1 << pb_n) - 1))
            .collect();
        BenchOperands {
            a: apnn_bitpack::BitPlanes::from_codes(&a_codes, 1, k_bits, pa_n, Encoding::ZeroOne),
            b: apnn_bitpack::BitPlanes::from_codes(
                &b_codes,
                MAX_JB,
                k_bits,
                pb_n,
                Encoding::ZeroOne,
            ),
        }
    }

    /// Time one `(jb, kb)` candidate with `op` on `arm`; returns ns per
    /// streamed word (warm-up call excluded).
    fn time_candidate(&self, op: BmmaOp, arm: PopcntArm, jb: usize, kb: usize) -> f64 {
        use crate::micro::{popc_tile, PlaneView, MAX_TILE};
        let (av, bv) = (
            PlaneView::from_bitplanes(&self.a),
            PlaneView::from_bitplanes(&self.b),
        );
        let wpr = av.words_per_row();
        let (pa_n, pb_n) = (self.a.bits() as usize, self.b.bits() as usize);
        let mut tile = [0i32; MAX_TILE];
        let live = &mut tile[..jb * pa_n * pb_n];
        let words_per_call = live.len() * wpr;
        let reps = (MICRO_BENCH_WORDS / words_per_call.max(1)).max(1);
        let mut sink = 0i64;
        // One warm-up call loads the operands and the instruction path.
        popc_tile(op, arm, &av, 0, &bv, 0, jb, kb, live);
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            popc_tile(op, arm, &av, 0, &bv, 0, jb, kb, live);
            sink = sink.wrapping_add(live[0] as i64);
        }
        let ns = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(sink);
        ns / (reps * words_per_call) as f64
    }
}

/// Time the candidate `(JB, KB)` grid on `arm` with synthetic operands of
/// the given shape and return the fastest tile plus its per-word time (so
/// wide and narrow column blocks compare fairly, and the winner's
/// throughput can seed the cost oracle). Deterministic inputs; candidates
/// are visited in a fixed order and ties keep the earlier winner, with the
/// L1 heuristic answer as the seed.
fn bench_micro_grid(
    n_cols: usize,
    k_words: usize,
    pa: u32,
    pb: u32,
    arm: PopcntArm,
) -> (MicroTile, f64) {
    let operands = BenchOperands::synthesize(k_words, pa, pb);
    let mut best = micro_heuristic(n_cols, k_words, pa, pb);
    let mut best_ns_per_word = f64::INFINITY;
    for &jb in JB_CANDIDATES.iter().filter(|&&jb| (jb / 2) < n_cols.max(1)) {
        for &kb in &KB_CANDIDATES {
            let ns_per_word = operands.time_candidate(BmmaOp::And, arm, jb, kb);
            if ns_per_word < best_ns_per_word {
                best_ns_per_word = ns_per_word;
                best = MicroTile { jb, kb };
            }
        }
    }
    (best.sanitized(), best_ns_per_word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlp_formula_matches_eq3() {
        // p=1, M=64, q=2, N=1024, bm=32, bn=64 -> 64*2048/2048 = 64.
        let tlp = thread_level_parallelism(64, 1024, 1, 2, 32, 64);
        assert_eq!(tlp, 64.0);
    }

    #[test]
    fn ci_formula_matches_eq4() {
        assert_eq!(compute_intensity(64, 64), 64.0);
        assert!((compute_intensity(32, 64) - 2.0 * 32.0 * 64.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn ci_monotone_in_tile_size() {
        assert!(compute_intensity(32, 32) > compute_intensity(16, 16));
        assert!(compute_intensity(128, 128) > compute_intensity(64, 64));
    }

    #[test]
    fn large_matrices_get_large_tiles() {
        // Huge batched space: every candidate clears T, so max-CI (128×128)
        // wins.
        let t = autotune(4096, 4096, 1024, 2, 2);
        assert_eq!((t.bm, t.bn), (128, 128));
    }

    #[test]
    fn small_matrices_get_small_tiles() {
        // Tiny problem: nothing reaches TLP=64, fall back to max TLP (16×16).
        let t = autotune(16, 16, 128, 1, 1);
        assert_eq!((t.bm, t.bn), (16, 16));
    }

    #[test]
    fn paper_fc_example_balances_tlp_and_ci() {
        // The Table 4 workload: M=64 (batch), N=K=1024, w1a2.
        // TLP>=64 candidates peak at CI for (bm,bn)=(32,64) or (64,32).
        let t = autotune(64, 1024, 1024, 1, 2);
        let tlp = thread_level_parallelism(64, 1024, 1, 2, t.bm, t.bn);
        assert!(tlp >= TLP_THRESHOLD);
        assert_eq!(t.bm * t.bn, 2048, "chose {:?}", (t.bm, t.bn));
    }

    #[test]
    fn micro_tile_is_deterministic_and_bounded() {
        for (n_cols, k_words, pa, pb) in [
            (1usize, 1usize, 1u32, 1u32),
            (3, 2, 1, 2),
            (64, 72, 2, 2),
            (512, 4096, 8, 8),
            (0, 0, 1, 1),
        ] {
            let a = autotune_micro(n_cols, k_words, pa, pb);
            let b = autotune_micro(n_cols, k_words, pa, pb);
            assert_eq!(a, b, "selection must be pure");
            assert!(JB_CANDIDATES.contains(&a.jb));
            assert!((1..=MAX_JB).contains(&a.jb));
            assert!(a.kb >= 1);
            // The per-round working set respects the L1 budget.
            assert!((pa.max(1) as usize + a.jb * pb.max(1) as usize) * a.kb <= MICRO_L1_BUDGET / 8);
        }
    }

    #[test]
    fn micro_tile_narrow_problems_get_narrow_blocks() {
        // One output column cannot use an 8-wide block...
        assert_eq!(autotune_micro(1, 64, 2, 2).jb, 1);
        // ...but rounding up to cover a ragged tail is allowed.
        assert!(autotune_micro(3, 64, 2, 2).jb >= 2);
        assert_eq!(autotune_micro(1024, 64, 2, 2).jb, MAX_JB);
    }

    #[test]
    fn micro_tune_moves_the_stats_counter() {
        let s = crate::stats::scope();
        let _ = autotune_micro(64, 64, 2, 2);
        assert_eq!(s.micro_tunes(), 1);
        assert_eq!(s.micro_benches(), 0, "the heuristic never measures");
    }

    /// One test covers both [`select_micro`] modes so the process-global
    /// mode override is never toggled concurrently with another test.
    #[test]
    fn select_micro_memoizes_and_respects_the_mode() {
        let arm = PopcntArm::detect();

        // Measured mode: a distinct shape costs one selection + one timed
        // grid sweep; repeats are memo hits and move nothing.
        force_micro_select(Some(MicroSelect::Measure));
        let s = crate::stats::scope();
        let t1 = select_micro(97, 31, 2, 3, arm);
        assert_eq!((s.micro_tunes(), s.micro_benches()), (1, 1));
        let t2 = select_micro(97, 31, 2, 3, arm);
        assert_eq!(
            (s.micro_tunes(), s.micro_benches()),
            (1, 1),
            "repeat shapes are free"
        );
        assert_eq!(t1, t2, "memo must return the recorded tile");
        assert!(JB_CANDIDATES.contains(&t1.jb));
        assert!(KB_CANDIDATES.contains(&t1.kb));
        // The autotuner's hot path: an And-case cost probe for the shape a
        // measured sweep just selected must *reuse* the sweep's winner
        // timing (no fresh microbenchmark) — and must not deadlock on the
        // memo mutex doing so (regression: the reuse branch once held the
        // tile-memo guard across `update_resident_gauge`, which re-locks
        // it).
        let ns = stage_cost(
            StageShape {
                n_cols: 97,
                k_words: 31,
                pa: 2,
                pb: 3,
            },
            EmulationCase::AndUnsigned,
            arm,
            t1,
        );
        assert!(ns.is_finite() && ns > 0.0, "{ns}");
        assert_eq!(
            (s.micro_tunes(), s.micro_benches()),
            (1, 1),
            "the And-case probe must reuse the sweep's winner timing"
        );
        // A different arm (when one exists) is a different key.
        if let Some(&other) = PopcntArm::available().iter().find(|&&a| a != arm) {
            let _ = select_micro(97, 31, 2, 3, other);
            assert_eq!((s.micro_tunes(), s.micro_benches()), (2, 2));
        }

        // Deterministic mode pins the pure heuristic: one selection, zero
        // measurements, and the exact `autotune_micro` answer.
        force_micro_select(Some(MicroSelect::Heuristic));
        assert_eq!(micro_select_mode(), MicroSelect::Heuristic);
        let s = crate::stats::scope();
        let t = select_micro(98, 33, 2, 3, arm);
        assert_eq!((s.micro_tunes(), s.micro_benches()), (1, 0));
        assert_eq!(t, micro_heuristic(98, 33, 2, 3));
        let t2 = select_micro(98, 33, 2, 3, arm);
        assert_eq!((s.micro_tunes(), s.micro_benches()), (1, 0));
        assert_eq!(t, t2);

        force_micro_select(None);
    }

    #[test]
    fn stage_cost_probes_once_then_memoizes() {
        let arm = PopcntArm::detect();
        // A shape no other test touches, so the process-global memos can't
        // already hold it (tests share them across threads).
        let shape = StageShape {
            n_cols: 641,
            k_words: 17,
            pa: 2,
            pb: 2,
        };
        let tile = MicroTile { jb: 2, kb: 16 };
        let s = crate::stats::scope();
        let ns = stage_cost(shape, EmulationCase::AndUnsigned, arm, tile);
        assert!(ns.is_finite() && ns > 0.0, "{ns}");
        assert_eq!(s.micro_benches(), 1);
        // Repeat probe: lock-and-lookup, same answer, no new measurement.
        let ns2 = stage_cost(shape, EmulationCase::AndUnsigned, arm, tile);
        assert_eq!(ns.to_bits(), ns2.to_bits());
        assert_eq!(s.micro_benches(), 1);
        // An XOR-family case maps to a different boolean op => fresh probe.
        let ns3 = stage_cost(shape, EmulationCase::XorSignedBinary, arm, tile);
        assert!(ns3.is_finite() && ns3 > 0.0, "{ns3}");
        assert_eq!(s.micro_benches(), 2);
        assert!(crate::stats::micro_memo_resident() >= 2);
    }

    #[test]
    fn cost_memo_stays_bounded() {
        let arm = PopcntArm::detect();
        let tile = MicroTile { jb: 1, kb: 8 };
        // Stream more distinct shapes than the cap; FIFO eviction must hold
        // the map at exactly MICRO_MEMO_CAP entries (n_cols >= 100_000 keys
        // collide with no other test).
        for i in 0..(MICRO_MEMO_CAP + 8) {
            let shape = StageShape {
                n_cols: 100_000 + i,
                k_words: 1,
                pa: 1,
                pb: 1,
            };
            let ns = stage_cost(shape, EmulationCase::AndUnsigned, arm, tile);
            assert!(ns.is_finite() && ns > 0.0, "{ns}");
        }
        assert_eq!(cost_memo().lock().unwrap().len(), MICRO_MEMO_CAP);
        // The resident gauge covers both memos, each bounded at the cap.
        assert!(crate::stats::micro_memo_resident() <= 2 * MICRO_MEMO_CAP as u64);
    }

    #[test]
    fn narrow_problems_never_measure_overwide_blocks() {
        // Both modes filter the column-block candidates the same way, so no
        // mode forcing is needed (keeps this test race-free with the
        // mode-toggling test above).
        let t = select_micro(1, 409, 3, 3, PopcntArm::detect());
        assert_eq!(t.jb, 1, "one output column cannot use a wide block");
    }

    #[test]
    fn batching_raises_tlp_and_unlocks_bigger_tiles() {
        // Same M,N but more planes => more batched parallelism => the tuner
        // can afford larger tiles (this is the point of §4.1(a)).
        let t_small = autotune(64, 256, 512, 1, 1);
        let t_large = autotune(64, 256, 512, 8, 8);
        assert!(
            t_large.bm * t_large.bn >= t_small.bm * t_small.bn,
            "{t_small:?} vs {t_large:?}"
        );
    }
}
