//! Explicit im2row lowering: convolution as a materialized APMM call.
//!
//! The production path ([`super::cpu`]) performs *direct* convolution with
//! on-the-fly window gathers (no im2row buffer, the §4.2 design). This
//! module materializes the gathered windows into activation planes and runs
//! the stock [`crate::apmm`] kernel instead — the classic GEMM-lowering
//! alternative. It exists for two reasons:
//!
//! * as an independent second implementation that cross-checks the direct
//!   kernel (`direct == im2row` is asserted in tests for every encoding
//!   case), and
//! * as the building block for users who want conv-shaped problems on the
//!   plain APMM interface.
//!
//! Limitations: only unsigned activations (Cases I and III) lower exactly.
//! ±1 activations cannot: zero-filled out-of-frame taps *and* the zero bits
//! of the 128-bit channel padding would both decode as −1 under the GEMM's
//! `K − 2·popc` rule, which only the direct kernel's per-window counter
//! corrections fix. [`im2row_conv`] rejects ±1 activations.

use apnn_bitpack::{BitPlanes, BitTensor4, Encoding};

use super::{ConvDesc, ConvWeights};
use crate::apmm::{cpu::apmm_cpu, ApmmDesc};

/// Materialize the implicit-GEMM activation operand: one row per output
/// pixel, `KH·KW` channel segments per row (each padded to the fragment
/// width), matching [`ConvWeights`]' row layout exactly.
pub fn im2row_planes(desc: &ConvDesc, input: &BitTensor4) -> BitPlanes {
    let mut codes = Vec::new();
    let mut out = BitPlanes::zeros(1, 1, desc.x_bits, Encoding::ZeroOne);
    im2row_planes_into(desc, input, &mut codes, &mut out);
    out
}

/// [`im2row_planes`] writing into caller-owned buffers: `codes` is the
/// segmented-code scratch, `out` the materialized activation operand,
/// rebuilt in place. Allocation-free once both have reached capacity —
/// so even the explicit-GEMM lowering can run a steady-state loop without
/// re-materializing its (large) im2row buffer from the allocator.
pub fn im2row_planes_into(
    desc: &ConvDesc,
    input: &BitTensor4,
    codes: &mut Vec<u32>,
    out: &mut BitPlanes,
) {
    assert_eq!(input.bits(), desc.x_bits);
    assert_eq!(input.encoding(), desc.x_enc);
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let pixels = desc.batch * oh * ow;
    let padded_c = desc.padded_c();
    let k_bits = desc.k_bits();

    // Build per-plane bit matrices with zero-fill for out-of-frame taps.
    codes.clear();
    codes.resize(pixels * k_bits, 0);
    let seg_codes = codes;
    for b in 0..desc.batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (b * oh + oy) * ow + ox;
                for ky in 0..desc.kh {
                    for kx in 0..desc.kw {
                        let iy = (oy * desc.stride + ky) as isize - desc.pad as isize;
                        let ix = (ox * desc.stride + kx) as isize - desc.pad as isize;
                        if iy < 0 || ix < 0 || iy >= desc.h as isize || ix >= desc.w as isize {
                            continue; // zero fill
                        }
                        let tap = ky * desc.kw + kx;
                        for c in 0..desc.cin {
                            let code = input.get_code(b, iy as usize, ix as usize, c);
                            seg_codes[row * k_bits + tap * padded_c + c] = code;
                        }
                    }
                }
            }
        }
    }
    out.from_codes_into(seg_codes, pixels, k_bits, desc.x_bits, desc.x_enc);
}

/// Convolution by explicit im2row + APMM. Output layout matches
/// [`super::cpu::conv_cpu`] (NHWC i32).
///
/// Panics on ±1 activations (see module docs).
pub fn im2row_conv(desc: &ConvDesc, weights: &ConvWeights, input: &BitTensor4) -> Vec<i32> {
    assert!(
        desc.x_enc == Encoding::ZeroOne,
        "im2row lowering cannot express the ±1 out-of-frame/padding \
         correction; use the direct kernel"
    );
    let acts = im2row_planes(desc, input);
    let g = desc.as_gemm();
    // The weights' BitPlanes already use the segmented K layout; k widths
    // must agree bit-for-bit.
    assert_eq!(weights.planes().cols(), g.k);
    assert_eq!(acts.cols(), g.k);

    let gemm_desc = ApmmDesc {
        m: g.m,
        n: g.n,
        k: g.k,
        w_bits: desc.w_bits,
        x_bits: desc.x_bits,
        w_enc: desc.w_enc,
        x_enc: desc.x_enc,
    };
    // APMM returns cout × pixels; conv output is pixel-major (NHWC).
    let y = apmm_cpu(&gemm_desc, weights.planes(), &acts);
    let (m, n) = (g.m, g.n);
    let mut out = vec![0i32; m * n];
    for co in 0..m {
        for pix in 0..n {
            out[pix * m + co] = y[co * n + pix];
        }
    }
    out
}

/// The im2row buffer's memory footprint in bytes — the cost the paper's
/// direct design avoids (`KH·KW×` amplification of the activation tensor).
pub fn im2row_bytes(desc: &ConvDesc) -> usize {
    let pixels = desc.batch * desc.out_h() * desc.out_w();
    pixels * desc.k_bits() * desc.x_bits as usize / 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use apnn_bitpack::{Layout, Tensor4};

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn rand_input(desc: &ConvDesc, seed: &mut u64) -> BitTensor4 {
        let codes = Tensor4::<u32>::from_fn(
            desc.batch,
            desc.cin,
            desc.h,
            desc.w,
            Layout::Nhwc,
            |_, _, _, _| (lcg(seed) as u32) % (1 << desc.x_bits),
        );
        BitTensor4::from_tensor(&codes, desc.x_bits, desc.x_enc)
    }

    #[test]
    fn im2row_matches_direct_conv_unsigned() {
        let mut seed = 7;
        for desc in [
            ConvDesc::unsigned(2, 5, 8, 4, 3, 1, 1, 2, 2),
            ConvDesc::unsigned(1, 130, 5, 3, 3, 1, 1, 1, 3),
            ConvDesc::unsigned(1, 4, 9, 2, 5, 2, 2, 3, 1),
        ] {
            let n = desc.cout * desc.kh * desc.kw * desc.cin;
            let codes: Vec<u32> = (0..n)
                .map(|_| (lcg(&mut seed) as u32) % (1 << desc.w_bits))
                .collect();
            let weights = ConvWeights::from_codes(&desc, &codes);
            let input = rand_input(&desc, &mut seed);
            let direct = super::super::cpu::conv_cpu(&desc, &weights, &input);
            let lowered = im2row_conv(&desc, &weights, &input);
            assert_eq!(direct, lowered, "desc {desc:?}");
        }
    }

    #[test]
    fn im2row_matches_direct_conv_signed_weights() {
        let mut seed = 21;
        let mut desc = ConvDesc::unsigned(1, 6, 7, 4, 3, 1, 1, 1, 2);
        desc.w_enc = Encoding::PlusMinusOne;
        let n = desc.cout * 9 * desc.cin;
        let vals: Vec<i32> = (0..n)
            .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
            .collect();
        let weights = ConvWeights::from_signed(&desc, &vals);
        let input = rand_input(&desc, &mut seed);
        assert_eq!(
            super::super::cpu::conv_cpu(&desc, &weights, &input),
            im2row_conv(&desc, &weights, &input)
        );
    }

    #[test]
    #[should_panic(expected = "out-of-frame")]
    fn signed_activations_rejected() {
        let mut desc = ConvDesc::unsigned(1, 4, 4, 2, 3, 1, 1, 1, 1);
        desc.w_enc = Encoding::PlusMinusOne;
        desc.x_enc = Encoding::PlusMinusOne;
        let weights = ConvWeights::from_signed(&desc, &vec![1; 2 * 9 * 4]);
        let input = BitTensor4::zeros(1, 4, 4, 4, 1, Encoding::PlusMinusOne);
        let _ = im2row_conv(&desc, &weights, &input);
    }

    #[test]
    fn buffer_amplification_matches_formula() {
        // The im2row buffer is KH·KW·(padding) times the packed input.
        let desc = ConvDesc::unsigned(1, 128, 16, 128, 3, 1, 1, 1, 2);
        let buffer = im2row_bytes(&desc);
        // 256 pixels × 9 taps × 128 channels × 2 bits / 8.
        assert_eq!(buffer, 256 * 9 * 128 * 2 / 8);
    }

    #[test]
    fn im2row_into_reuses_buffers_across_shapes() {
        let mut seed = 51;
        let mut codes = Vec::new();
        let mut out = BitPlanes::zeros(1, 1, 2, Encoding::ZeroOne);
        for desc in [
            ConvDesc::unsigned(2, 5, 8, 4, 3, 1, 1, 2, 2),
            ConvDesc::unsigned(1, 4, 6, 2, 3, 1, 1, 1, 2),
        ] {
            let input = rand_input(&desc, &mut seed);
            im2row_planes_into(&desc, &input, &mut codes, &mut out);
            let fresh = im2row_planes(&desc, &input);
            assert_eq!(out.rows(), fresh.rows());
            assert_eq!(out.reconstruct_codes(), fresh.reconstruct_codes());
        }
    }

    #[test]
    fn stride_two_no_padding() {
        let mut seed = 33;
        let desc = ConvDesc::unsigned(2, 6, 8, 3, 3, 2, 0, 2, 3);
        let n = desc.cout * 9 * desc.cin;
        let codes: Vec<u32> = (0..n)
            .map(|_| (lcg(&mut seed) as u32) % (1 << desc.w_bits))
            .collect();
        let weights = ConvWeights::from_codes(&desc, &codes);
        let input = rand_input(&desc, &mut seed);
        assert_eq!(
            super::super::cpu::conv_cpu(&desc, &weights, &input),
            im2row_conv(&desc, &weights, &input)
        );
    }
}
