//! Arbitrary-Precision Convolution — APConv (paper §4.2).
//!
//! APConv lowers a `p`-bit-weight × `q`-bit-activation convolution onto the
//! same batched 1-bit tensor-core machinery as APMM via implicit GEMM:
//! `M = C_out`, `N = batch·OH·OW`, `K = KH·KW·C_in` (each `(kh,kw)` tap's
//! channel vector padded to the 128-bit fragment boundary).
//!
//! Two convolution-specific designs from the paper:
//! * **Channel-major data organization** (§4.2(a), Fig. 4): activations are
//!   [`apnn_bitpack::BitTensor4`] in NPHWC order, so each window tap reads
//!   one aligned, coalesced channel vector — [`simmap`] exposes the NCHW
//!   alternative to quantify the difference.
//! * **Input-aware padding** (§4.2(b)): out-of-frame window taps must
//!   contribute *zero*, which is nontrivial when bit 0 encodes −1; see
//!   [`padding`] for the three strategies (including the border-counter
//!   correction for ±1 features).

pub mod cpu;
pub mod im2row;
pub mod padding;
pub mod simmap;
pub mod weights;

use apnn_bitpack::word::pad_to_bmma_k;
use apnn_bitpack::{BitTensor4, Encoding};
use apnn_sim::{GpuSpec, KernelReport};

use crate::apmm::{ApmmDesc, TileConfig};
use crate::autotune::autotune;
use crate::fusion::Epilogue;
pub use weights::ConvWeights;

/// Shape + precision of one convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDesc {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub cin: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels.
    pub cout: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same both axes).
    pub stride: usize,
    /// Zero-padding (same both axes).
    pub pad: usize,
    /// Weight bits `p`.
    pub w_bits: u32,
    /// Activation bits `q`.
    pub x_bits: u32,
    /// Weight encoding.
    pub w_enc: Encoding,
    /// Activation encoding.
    pub x_enc: Encoding,
}

impl ConvDesc {
    /// Square-input convenience constructor with unsigned encodings.
    #[allow(clippy::too_many_arguments)]
    pub fn unsigned(
        batch: usize,
        cin: usize,
        hw: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        p: u32,
        q: u32,
    ) -> Self {
        ConvDesc {
            batch,
            cin,
            h: hw,
            w: hw,
            cout,
            kh: k,
            kw: k,
            stride,
            pad,
            w_bits: p,
            x_bits: q,
            w_enc: Encoding::ZeroOne,
            x_enc: Encoding::ZeroOne,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Channel vector width after 128-bit padding.
    pub fn padded_c(&self) -> usize {
        pad_to_bmma_k(self.cin)
    }

    /// Implicit-GEMM reduction width in bits (`KH·KW` fragment-aligned
    /// channel segments).
    pub fn k_bits(&self) -> usize {
        self.kh * self.kw * self.padded_c()
    }

    /// Valid (logical) reduction length per fully-in-frame window.
    pub fn k_valid(&self) -> usize {
        self.kh * self.kw * self.cin
    }

    /// The implicit-GEMM description this convolution maps onto. `k` is the
    /// padded bit width because the conv operands are materialized directly
    /// at fragment granularity.
    pub fn as_gemm(&self) -> ApmmDesc {
        ApmmDesc {
            m: self.cout,
            n: self.batch * self.out_h() * self.out_w(),
            k: self.k_bits(),
            w_bits: self.w_bits,
            x_bits: self.x_bits,
            w_enc: self.w_enc,
            x_enc: self.x_enc,
        }
    }

    /// Total emulated 1-bit MACs (§3.1 cost analysis, conv form).
    pub fn emulated_macs(&self) -> u64 {
        self.w_bits as u64
            * self.x_bits as u64
            * self.cout as u64
            * (self.batch * self.out_h() * self.out_w()) as u64
            * self.k_bits() as u64
    }
}

/// Output of a fused convolution.
#[derive(Debug, Clone)]
pub enum ConvOutput {
    /// Raw NHWC i32 accumulators `(batch, oh, ow, cout)`.
    Int32(Vec<i32>),
    /// Quantized activations packed channel-major for the next layer.
    Packed(BitTensor4),
}

/// Optional 2×2/stride-2 pooling fused between the accumulators and the
/// quantizing epilogue (the Fig. 10 fusion workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool2 {
    /// 2×2 max pooling.
    Max,
    /// 2×2 average pooling (integer mean, floor).
    Avg,
}

/// An APConv kernel instance.
#[derive(Debug, Clone)]
pub struct ApConv {
    /// Layer description.
    pub desc: ConvDesc,
    /// Block tiling over the batched implicit-GEMM space.
    pub tile: TileConfig,
}

impl ApConv {
    /// Create with an autotuned tile configuration.
    pub fn new(desc: ConvDesc) -> Self {
        let g = desc.as_gemm();
        let tile = autotune(g.m, g.n, g.k, g.w_bits, g.x_bits);
        ApConv { desc, tile }
    }

    /// Create with an explicit tile configuration.
    pub fn with_tile(desc: ConvDesc, tile: TileConfig) -> Self {
        ApConv { desc, tile }
    }

    /// Functional CPU convolution over packed operands. Returns NHWC i32.
    pub fn execute(&self, weights: &ConvWeights, input: &BitTensor4) -> Vec<i32> {
        cpu::conv_cpu(&self.desc, weights, input)
    }

    /// Functional CPU convolution with fused pooling + epilogue.
    pub fn execute_fused(
        &self,
        weights: &ConvWeights,
        input: &BitTensor4,
        pool: Option<Pool2>,
        epi: &Epilogue,
    ) -> ConvOutput {
        cpu::conv_cpu_fused(&self.desc, weights, input, pool, epi)
    }

    /// Hoist every per-call invariant out of the serving loop: take
    /// ownership of the packed weights and materialize the emulation plan +
    /// input-aware padding pattern (§4.2(b)). The result executes repeatedly
    /// without re-packing or re-planning, and accepts partial batches.
    pub fn prepare(&self, weights: ConvWeights) -> PreparedConv {
        let (cout, taps, cin, _) = weights.dims();
        assert_eq!(cout, self.desc.cout, "weight cout");
        assert_eq!(taps, self.desc.kh * self.desc.kw, "weight taps");
        assert_eq!(cin, self.desc.cin, "weight cin");
        crate::stats::count_weight_prepare();
        let exec_plan = cpu::ConvExecPlan::new(&self.desc, &weights);
        PreparedConv {
            desc: self.desc,
            tile: self.tile,
            weights,
            exec_plan,
        }
    }

    /// Simulated latency of the un-fused (i32-output) kernel.
    pub fn simulate(&self, spec: &GpuSpec) -> KernelReport {
        simmap::estimate(
            &self.desc,
            &self.tile,
            spec,
            None,
            None,
            simmap::ActLayout::Nphwc,
        )
    }

    /// Simulated latency with fused pooling/epilogue.
    pub fn simulate_fused(
        &self,
        spec: &GpuSpec,
        pool: Option<Pool2>,
        epi: &Epilogue,
    ) -> KernelReport {
        simmap::estimate(
            &self.desc,
            &self.tile,
            spec,
            pool,
            Some(epi),
            simmap::ActLayout::Nphwc,
        )
    }
}

/// An APConv kernel compiled for serving: packed weights + emulation plan +
/// padding pattern, all materialized once at compile time.
#[derive(Debug, Clone)]
pub struct PreparedConv {
    /// Layer description (`batch` is the *compiled* batch; calls may shard).
    pub desc: ConvDesc,
    /// Block tiling chosen at compile time.
    pub tile: TileConfig,
    weights: ConvWeights,
    exec_plan: cpu::ConvExecPlan,
}

impl PreparedConv {
    /// The packed weight operand.
    pub fn weights(&self) -> &ConvWeights {
        &self.weights
    }

    /// The CPU microkernel `(JB, KB)` tile this plan executes with (chosen
    /// at prepare time by [`crate::autotune::select_micro`]).
    pub fn micro(&self) -> crate::autotune::MicroTile {
        self.exec_plan.micro()
    }

    /// Replace the microkernel tile (bench sweeps, differential tests) —
    /// every value is bit-identical.
    pub fn with_micro(mut self, micro: crate::autotune::MicroTile) -> Self {
        self.exec_plan = self.exec_plan.with_micro(micro);
        self
    }

    /// The popcount arm this plan executes with (bound at prepare time by
    /// [`apnn_bitpack::PopcntArm::detect`]).
    pub fn arm(&self) -> apnn_bitpack::PopcntArm {
        self.exec_plan.arm()
    }

    /// Force a popcount arm (tests, benches, CI force-arm legs) — every
    /// available arm is bit-identical; unavailable arms are clamped.
    pub fn with_arm(mut self, arm: apnn_bitpack::PopcntArm) -> Self {
        self.exec_plan = self.exec_plan.with_arm(arm);
        self
    }

    /// NHWC i32 accumulators for an input shard (batch ≤ compiled batch).
    pub fn execute(&self, input: &BitTensor4) -> Vec<i32> {
        cpu::conv_exec(&self.desc, &self.weights, input, &self.exec_plan)
    }

    /// Fused pooling + epilogue execution for an input shard.
    pub fn execute_fused(
        &self,
        input: &BitTensor4,
        pool: Option<Pool2>,
        epi: &Epilogue,
    ) -> ConvOutput {
        cpu::conv_exec_fused(&self.desc, &self.weights, input, &self.exec_plan, pool, epi)
    }

    /// Sequential workspace form of [`PreparedConv::execute`]: NHWC i32
    /// accumulators land in `out`, the window gather reuses `scratch`, and
    /// — once the buffers have reached the plan's full-batch capacity — the
    /// call performs **zero heap allocations**. Bit-identical to the
    /// thread-pool path (integer-exact kernels, same accumulation order).
    pub fn execute_into(
        &self,
        input: &BitTensor4,
        scratch: &mut cpu::ConvScratch,
        out: &mut Vec<i32>,
    ) {
        cpu::conv_exec_seq(
            &self.desc,
            &self.weights,
            input,
            &self.exec_plan,
            &mut scratch.window,
            out,
        );
    }

    /// Sequential workspace form of [`PreparedConv::execute_fused`] for
    /// quantizing epilogues: accumulators and pooled values go through
    /// `scratch`, and the packed channel-major activations are rebuilt in
    /// place in `out` (see [`apnn_bitpack::BitTensor4::reset_zeros`]).
    /// Panics if `epi` does not end in quantization — the compiled-plan
    /// engine only runs quantizing conv stages.
    pub fn execute_fused_into(
        &self,
        input: &BitTensor4,
        pool: Option<Pool2>,
        epi: &Epilogue,
        scratch: &mut cpu::ConvScratch,
        out: &mut BitTensor4,
    ) {
        cpu::conv_exec_fused_seq(
            &self.desc,
            &self.weights,
            input,
            &self.exec_plan,
            None,
            pool,
            epi,
            scratch,
            out,
        );
    }

    /// [`PreparedConv::execute_fused_into`] with a residual buffer added
    /// into the raw i32 accumulators *before* pooling and the epilogue —
    /// the fused lowering of a ResNet block tail. `residual` must hold
    /// `batch·out_h·out_w·cout` NHWC values (the same shape the conv
    /// accumulates); exactness is integer end-to-end: no rounding happens
    /// between the main-path and skip-path contributions.
    pub fn execute_fused_residual_into(
        &self,
        input: &BitTensor4,
        residual: &[i32],
        pool: Option<Pool2>,
        epi: &Epilogue,
        scratch: &mut cpu::ConvScratch,
        out: &mut BitTensor4,
    ) {
        cpu::conv_exec_fused_seq(
            &self.desc,
            &self.weights,
            input,
            &self.exec_plan,
            Some(residual),
            pool,
            epi,
            scratch,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dims() {
        let d = ConvDesc::unsigned(1, 128, 16, 256, 3, 1, 1, 1, 2);
        assert_eq!(d.out_h(), 16);
        assert_eq!(d.out_w(), 16);
        assert_eq!(d.padded_c(), 128);
        assert_eq!(d.k_bits(), 9 * 128);
        assert_eq!(d.k_valid(), 9 * 128);
    }

    #[test]
    fn ragged_channels_pad_per_tap() {
        let d = ConvDesc::unsigned(1, 3, 224, 64, 11, 4, 2, 1, 8);
        assert_eq!(d.padded_c(), 128);
        assert_eq!(d.k_bits(), 121 * 128);
        assert_eq!(d.k_valid(), 121 * 3);
        assert_eq!(d.out_h(), 55); // AlexNet conv1
    }

    #[test]
    fn prepared_conv_matches_adhoc_and_serves_partial_batches() {
        use apnn_bitpack::{Layout, Tensor4};
        let desc = ConvDesc::unsigned(4, 5, 6, 3, 3, 1, 1, 1, 2);
        let mut seed = 3u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let codes = Tensor4::<u32>::from_fn(4, 5, 6, 6, Layout::Nhwc, |_, _, _, _| next() % 4);
        let input = BitTensor4::from_tensor(&codes, 2, Encoding::ZeroOne);
        let wcodes: Vec<u32> = (0..3 * 9 * 5).map(|_| next() % 2).collect();
        let weights = ConvWeights::from_codes(&desc, &wcodes);

        let conv = ApConv::new(desc);
        let adhoc = conv.execute(&weights, &input);
        let prepared = conv.prepare(weights);
        assert_eq!(prepared.execute(&input), adhoc);

        // First image alone — the plan serves a partial shard unchanged.
        let one = input.batch_slice(0, 1);
        let got = prepared.execute(&one);
        let per_image = desc.out_h() * desc.out_w() * desc.cout;
        assert_eq!(got, adhoc[..per_image].to_vec());
    }

    #[test]
    fn gemm_mapping() {
        let d = ConvDesc::unsigned(8, 128, 16, 256, 3, 1, 1, 2, 2);
        let g = d.as_gemm();
        assert_eq!(g.m, 256);
        assert_eq!(g.n, 8 * 16 * 16);
        assert_eq!(g.k, 9 * 128);
        assert_eq!(g.w_bits, 2);
    }
}
