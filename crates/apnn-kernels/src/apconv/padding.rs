//! Input-aware padding (paper §4.2(b)).
//!
//! Convolution semantics require out-of-frame window taps to contribute
//! **zero** to the accumulator. With `{0,1}` activations that is exactly
//! what padding zeros achieves — but when bit 0 encodes −1, a zero pad bit
//! would inject spurious −1 values. The paper's three strategies:
//!
//! 1. both `{0,1}` → pad 0 (nothing to correct);
//! 2. both `{−1,+1}` → pad 1 and track the out-of-frame positions with a
//!    counter, amending the result afterwards;
//! 3. weights `{−1,+1}`, features `{0,1}` → pad 0 (the Case III correction
//!    `J·X` only sums real feature bits, so results are unchanged).
//!
//! Because out-of-frame-ness is a property of a whole `(kh, kw)` tap (all
//! channels of the tap are outside together), the correction works at tap
//! granularity using the per-tap weight popcounts from
//! [`super::weights::ConvWeights`].

use apnn_bitpack::Encoding;

/// What to write into gathered feature words for an out-of-frame tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadFill {
    /// Fill with 0 bits.
    Zeros,
    /// Fill with 1 bits across the `cin` valid channels (channel padding
    /// beyond `cin` stays 0 to preserve the word invariants).
    OnesValidChannels,
}

/// Select the padding strategy for the given operand encodings.
pub fn pad_fill(w_enc: Encoding, x_enc: Encoding) -> PadFill {
    match (w_enc, x_enc) {
        // Strategy 2: both ±1 — pad 1 + counter correction.
        (Encoding::PlusMinusOne, Encoding::PlusMinusOne) => PadFill::OnesValidChannels,
        // Strategies 1 & 3 (and the mirrored case): pad 0.
        _ => PadFill::Zeros,
    }
}

/// Build the fill words for one tap: `words` words covering `padded_c` bits
/// of which the first `cin` are valid channels.
pub fn fill_words(fill: PadFill, cin: usize, words: usize) -> Vec<u64> {
    match fill {
        PadFill::Zeros => vec![0u64; words],
        PadFill::OnesValidChannels => {
            let mut v = vec![0u64; words];
            for (wi, word) in v.iter_mut().enumerate() {
                let lo = wi * 64;
                if lo >= cin {
                    break;
                }
                let n = (cin - lo).min(64);
                *word = apnn_bitpack::word::low_mask(n);
            }
            v
        }
    }
}

/// Correction for the ±1/±1 (XOR) case on a window with out-of-frame taps.
///
/// The raw kernel computes `popc_total` over *all* taps with 1-filled pads.
/// For output correctness we need `K_valid − 2·popc_valid` where the
/// out-of-frame taps are excluded:
///
/// * `popc_oob = Σ_oob (cin − w_tap_popc)` — XOR of a weight bit with the
///   1-fill counts exactly the weight's zero bits;
/// * `popc_valid = popc_total − popc_oob`;
/// * `k_valid = (#valid taps) · cin`.
///
/// Returns the corrected dot product.
pub fn correct_xor_window(
    popc_total: i32,
    cin: i32,
    valid_taps: i32,
    oob_weight_popc_sum: i32,
    oob_taps: i32,
) -> i32 {
    let popc_oob = oob_taps * cin - oob_weight_popc_sum;
    let popc_valid = popc_total - popc_oob;
    valid_taps * cin - 2 * popc_valid
}

/// Correction for the mirrored Case III (unsigned weights, ±1 features):
/// the row-sum term must only count weight bits under *valid* taps.
pub fn valid_row_popc(total_row_popc: i32, oob_weight_popc_sum: i32) -> i32 {
    total_row_popc - oob_weight_popc_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_selection() {
        assert_eq!(
            pad_fill(Encoding::ZeroOne, Encoding::ZeroOne),
            PadFill::Zeros
        );
        assert_eq!(
            pad_fill(Encoding::PlusMinusOne, Encoding::ZeroOne),
            PadFill::Zeros
        );
        assert_eq!(
            pad_fill(Encoding::PlusMinusOne, Encoding::PlusMinusOne),
            PadFill::OnesValidChannels
        );
        assert_eq!(
            pad_fill(Encoding::ZeroOne, Encoding::PlusMinusOne),
            PadFill::Zeros
        );
    }

    #[test]
    fn ones_fill_respects_channel_padding() {
        let words = fill_words(PadFill::OnesValidChannels, 70, 2);
        assert_eq!(words[0], u64::MAX);
        assert_eq!(words[1], (1u64 << 6) - 1);
        let words = fill_words(PadFill::OnesValidChannels, 3, 2);
        assert_eq!(words[0], 0b111);
        assert_eq!(words[1], 0);
    }

    #[test]
    fn zeros_fill() {
        assert_eq!(fill_words(PadFill::Zeros, 64, 2), vec![0, 0]);
    }

    #[test]
    fn xor_window_correction_scalar_check() {
        // 1 channel, 3 taps, 1 oob. w = [+1, -1, +1] (bits 1,0,1),
        // x_valid = [+1, -1] on the two valid taps, oob filled with +1.
        // XOR popc: tap0 (1^1)=0, tap1 (0^0)=0, tap_oob (1^1)=0 → total 0.
        // Desired: w0*x0 + w1*x1 = 1*1 + (-1)(-1) = 2.
        let corrected = correct_xor_window(0, 1, 2, /*oob w popc=1 (bit 1)*/ 1, 1);
        assert_eq!(corrected, 2);
        // Now w_oob = -1 (bit 0): XOR(0,1)=1 → total 1, oob popc sum 0.
        let corrected = correct_xor_window(1, 1, 2, 0, 1);
        assert_eq!(corrected, 2);
    }

    #[test]
    fn valid_row_popc_subtracts_oob() {
        assert_eq!(valid_row_popc(10, 3), 7);
    }
}
