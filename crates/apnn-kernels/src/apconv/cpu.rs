//! Functional multi-threaded CPU backend for APConv.
//!
//! Direct convolution over the channel-major packed layout: for every output
//! pixel the `KH·KW` window taps are gathered as aligned channel vectors
//! (the CPU analogue of the coalesced NPHWC reads of §4.2(a)), then every
//! output channel reduces against its packed weight row with XOR/AND +
//! popcount. Out-of-frame taps follow the input-aware padding strategies.

use apnn_bitpack::{BitTensor4, Encoding, PopcntArm};
use rayon::prelude::*;

use super::padding::{correct_xor_window, fill_words, pad_fill, valid_row_popc, PadFill};
use super::{ConvDesc, ConvOutput, ConvWeights, Pool2};
use crate::autotune::{select_micro, MicroTile};
use crate::fusion::Epilogue;
use crate::micro::{popc_tile, PlaneView, MAX_TILE};
use crate::select::{plan, EmulationCase};

/// Gathered window for one output pixel: per activation plane, the
/// concatenated tap words, plus the out-of-frame bookkeeping.
struct Window {
    /// `q` planes × (taps · words_per_tap) words.
    planes: Vec<Vec<u64>>,
    /// Indices of out-of-frame taps.
    oob_taps: Vec<usize>,
    /// Per-plane popcount of the gathered bits (the `J·X` window sum used by
    /// Case III; pads are zero there so this equals the valid-bit sum).
    plane_popc: Vec<i32>,
}

/// Input coordinates + frame status of window tap `(ky, kx)` for output
/// pixel `(oy, ox)` — the **single** copy of the stride/padding index
/// arithmetic every gather path uses.
#[inline]
fn tap_coords(desc: &ConvDesc, oy: usize, ox: usize, ky: usize, kx: usize) -> (isize, isize, bool) {
    let iy = (oy * desc.stride + ky) as isize - desc.pad as isize;
    let ix = (ox * desc.stride + kx) as isize - desc.pad as isize;
    let in_frame = iy >= 0 && ix >= 0 && (iy as usize) < desc.h && (ix as usize) < desc.w;
    (iy, ix, in_frame)
}

#[allow(clippy::too_many_arguments)]
fn gather_window(
    desc: &ConvDesc,
    input: &BitTensor4,
    fill: PadFill,
    fill_pattern: &[u64],
    b: usize,
    oy: usize,
    ox: usize,
    need_popc: bool,
) -> Window {
    let wpt = input.words_per_pixel();
    let taps = desc.kh * desc.kw;
    let q = desc.x_bits as usize;
    let mut planes = vec![vec![0u64; taps * wpt]; q];
    let mut oob_taps = Vec::new();
    for ky in 0..desc.kh {
        for kx in 0..desc.kw {
            let tap = ky * desc.kw + kx;
            let (iy, ix, in_frame) = tap_coords(desc, oy, ox, ky, kx);
            if in_frame {
                for (t, plane) in planes.iter_mut().enumerate() {
                    plane[tap * wpt..(tap + 1) * wpt].copy_from_slice(input.pixel_words(
                        b,
                        t as u32,
                        iy as usize,
                        ix as usize,
                    ));
                }
            } else {
                oob_taps.push(tap);
                if fill != PadFill::Zeros {
                    for plane in planes.iter_mut() {
                        plane[tap * wpt..(tap + 1) * wpt].copy_from_slice(fill_pattern);
                    }
                }
            }
        }
    }
    let plane_popc = if need_popc {
        planes
            .iter()
            .map(|p| p.iter().map(|w| w.count_ones()).sum::<u32>() as i32)
            .collect()
    } else {
        Vec::new()
    };
    Window {
        planes,
        oob_taps,
        plane_popc,
    }
}

/// Per-call-invariant execution state for a convolution: the emulation plan
/// and the materialized padding pattern. Compiled plans build this once;
/// the ad-hoc [`conv_cpu`] entry point rebuilds it per call.
#[derive(Debug, Clone)]
pub struct ConvExecPlan {
    pub(crate) eplan: crate::select::EmulationPlan,
    pub(crate) fill: PadFill,
    pub(crate) fill_pattern: Vec<u64>,
    /// CPU microkernel `(JB, KB)` tile: the column block runs over output
    /// channels (they share each loaded window word). Chosen once here —
    /// per layer at compile time for prepared kernels — and exact for any
    /// value (tests override it freely).
    pub(crate) micro: MicroTile,
    /// Popcount arm the microkernel runs on, bound once at plan time by
    /// [`PopcntArm::detect`] (exact for any value).
    pub(crate) arm: PopcntArm,
}

impl ConvExecPlan {
    /// Resolve the plan + padding strategy + popcount arm + microkernel
    /// tile for a layer. Tile selection goes through the shape-keyed
    /// [`select_micro`] memo, so rebuilding this state per ad-hoc call
    /// re-selects nothing after the first call per layer shape.
    pub fn new(desc: &ConvDesc, weights: &ConvWeights) -> Self {
        let eplan = plan(desc.w_enc, desc.x_enc);
        let fill = pad_fill(desc.w_enc, desc.x_enc);
        let fill_pattern = fill_words(fill, desc.cin, weights.words_per_tap());
        let arm = PopcntArm::detect();
        let micro = select_micro(
            desc.cout,
            desc.kh * desc.kw * weights.words_per_tap(),
            desc.x_bits,
            desc.w_bits,
            arm,
        );
        ConvExecPlan {
            eplan,
            fill,
            fill_pattern,
            micro,
            arm,
        }
    }

    /// The microkernel tile this plan executes with.
    pub fn micro(&self) -> MicroTile {
        self.micro
    }

    /// Replace the microkernel tile (bench sweeps, differential tests).
    pub fn with_micro(mut self, micro: MicroTile) -> Self {
        self.micro = micro;
        self
    }

    /// The popcount arm this plan executes with.
    pub fn arm(&self) -> PopcntArm {
        self.arm
    }

    /// Force a popcount arm (tests, benches, CI force-arm legs);
    /// unavailable arms are clamped to the detected best.
    pub fn with_arm(mut self, arm: PopcntArm) -> Self {
        self.arm = arm.sanitized();
        self
    }
}

/// Reusable per-call scratch for the sequential (workspace) APConv path:
/// one gathered window (reused across every output pixel) plus the
/// accumulator and pooling buffers of fused executions. Size it once with
/// [`ConvScratch::reserve`] (at the plan's full batch); every later call —
/// full or partial shard — is then allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    /// The reused window gather.
    pub(crate) window: WindowScratch,
    /// Raw NHWC i32 accumulators for fused executions.
    pub(crate) acc: Vec<i32>,
    /// Pooled accumulators (fused 2×2 pooling).
    pub(crate) pooled: Vec<i32>,
}

/// The window-gather portion of [`ConvScratch`], split out so fused
/// executions can borrow it independently of the accumulator buffers.
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// Flat `q` planes × (taps · words_per_tap) gathered window words.
    win: Vec<u64>,
    /// Indices of out-of-frame taps of the current window.
    oob: Vec<usize>,
    /// Per-plane popcounts of the gathered window (Case `AndWeightTransformed`).
    popc: Vec<i32>,
}

impl ConvScratch {
    /// Pre-size the scratch: `win_words` gathered-window words
    /// (`x_bits × taps × words_per_tap`), `taps` out-of-frame slots,
    /// `planes` popcount slots (`x_bits`), `acc` accumulator elements
    /// (`batch × oh × ow × cout`) and `pooled` pooled elements.
    pub fn reserve(
        &mut self,
        win_words: usize,
        taps: usize,
        planes: usize,
        acc: usize,
        pooled: usize,
    ) {
        let w = &mut self.window;
        w.win.reserve(win_words.saturating_sub(w.win.len()));
        w.oob.reserve(taps.saturating_sub(w.oob.len()));
        w.popc.reserve(planes.saturating_sub(w.popc.len()));
        self.acc.reserve(acc.saturating_sub(self.acc.len()));
        self.pooled
            .reserve(pooled.saturating_sub(self.pooled.len()));
    }
}

/// Gather one output pixel's window into the reused scratch buffers
/// (the allocation-free form of [`gather_window`]). Every tap's words are
/// overwritten — in-frame taps copy the input, out-of-frame taps write the
/// fill pattern (or zeros) — so stale data from the previous pixel never
/// survives.
///
/// `shift_prev` enables the stride-1 fast path: when the scratch still
/// holds this row's previous window (`(b, oy, ox−1)` at stride 1), tap
/// `(ky, kx)` of the new window reads exactly the same input pixel as tap
/// `(ky, kx+1)` of the old one — so the overlapping taps are moved left
/// with one in-place `copy_within` per kernel row and only the fresh
/// right-hand column is gathered from the input. Word contents (and hence
/// every popcount downstream) are bit-identical to a full gather.
#[allow(clippy::too_many_arguments)]
fn gather_window_seq(
    desc: &ConvDesc,
    input: &BitTensor4,
    fill_pattern: &[u64],
    b: usize,
    oy: usize,
    ox: usize,
    need_popc: bool,
    shift_prev: bool,
    scratch: &mut WindowScratch,
) {
    let wpt = input.words_per_pixel();
    let taps = desc.kh * desc.kw;
    let q = desc.x_bits as usize;
    let plane_words = taps * wpt;
    if shift_prev {
        debug_assert_eq!(desc.stride, 1);
        debug_assert!(ox > 0);
        debug_assert_eq!(scratch.win.len(), q * plane_words);
        // The per-plane popcounts update incrementally: only the departing
        // left column and the arriving right column change, and both are
        // touched by the shift anyway (exact integers, so this equals a
        // full recount). Valid whenever the previous gather tracked them
        // — same `need_popc` for every pixel of one execution.
        let track_popc = need_popc && scratch.popc.len() == q;
        if track_popc {
            for t in 0..q {
                let mut departing = 0u32;
                for ky in 0..desc.kh {
                    let base = t * plane_words + ky * desc.kw * wpt;
                    departing += apnn_bitpack::word::popcount(&scratch.win[base..base + wpt]);
                }
                scratch.popc[t] -= departing as i32;
            }
        }
        // Shift the kw−1 overlapping columns left in place, per plane and
        // kernel row. An old out-of-frame tap already holds the fill
        // pattern, which is exactly what the shifted position needs, so no
        // oob rewrite is required either.
        for t in 0..q {
            for ky in 0..desc.kh {
                let base = t * plane_words + ky * desc.kw * wpt;
                scratch
                    .win
                    .copy_within(base + wpt..base + desc.kw * wpt, base);
            }
        }
        // Rebuild the bounds bookkeeping (cheap — no word traffic) and
        // gather only the new rightmost column.
        scratch.oob.clear();
        for ky in 0..desc.kh {
            for kx in 0..desc.kw {
                let tap = ky * desc.kw + kx;
                let (iy, ix, in_frame) = tap_coords(desc, oy, ox, ky, kx);
                if kx + 1 == desc.kw {
                    for t in 0..q {
                        let dst = t * plane_words + tap * wpt;
                        if in_frame {
                            scratch.win[dst..dst + wpt].copy_from_slice(input.pixel_words(
                                b,
                                t as u32,
                                iy as usize,
                                ix as usize,
                            ));
                        } else {
                            scratch.win[dst..dst + wpt].copy_from_slice(fill_pattern);
                        }
                        if track_popc {
                            scratch.popc[t] +=
                                apnn_bitpack::word::popcount(&scratch.win[dst..dst + wpt]) as i32;
                        }
                    }
                }
                if !in_frame {
                    scratch.oob.push(tap);
                }
            }
        }
        if track_popc {
            return;
        }
    } else {
        // Every (plane, tap) slot is written exactly once below — in-frame
        // taps copy the input, out-of-frame taps copy the fill pattern
        // (which is all-zero words for `PadFill::Zeros`) — so the reshape
        // skips the per-pixel zeroing pass the old `resize(.., 0)` paid on
        // every window.
        apnn_bitpack::resize_for_overwrite(&mut scratch.win, q * plane_words);
        scratch.oob.clear();
        for ky in 0..desc.kh {
            for kx in 0..desc.kw {
                let tap = ky * desc.kw + kx;
                let (iy, ix, in_frame) = tap_coords(desc, oy, ox, ky, kx);
                if in_frame {
                    for t in 0..q {
                        let dst = t * plane_words + tap * wpt;
                        scratch.win[dst..dst + wpt].copy_from_slice(input.pixel_words(
                            b,
                            t as u32,
                            iy as usize,
                            ix as usize,
                        ));
                    }
                } else {
                    scratch.oob.push(tap);
                    for t in 0..q {
                        let dst = t * plane_words + tap * wpt;
                        scratch.win[dst..dst + wpt].copy_from_slice(fill_pattern);
                    }
                }
            }
        }
    }
    scratch.popc.clear();
    if need_popc {
        for t in 0..q {
            let plane = &scratch.win[t * plane_words..(t + 1) * plane_words];
            scratch
                .popc
                .push(plane.iter().map(|w| w.count_ones()).sum::<u32>() as i32);
        }
    }
}

/// Consume one popcount tile block: apply the per-case §3.2/§4.2(b)
/// corrections and the shift-add combination for a `jbc`-wide
/// output-channel block. The `[j][t][s]` tile orientation comes from the
/// conv call shape (A side = window planes, B side = weight rows); the
/// s-outer / t-inner accumulation order matches the pre-microkernel
/// kernels, so results are bit-identical. This is the **single** copy of
/// the conv correction arithmetic — both the parallel and the sequential
/// path consume their tiles here.
#[allow(clippy::too_many_arguments)]
fn combine_conv_block(
    desc: &ConvDesc,
    weights: &ConvWeights,
    case: EmulationCase,
    tile: &[i32],
    co0: usize,
    oob: &[usize],
    plane_popc: &[i32],
    valid_taps: i32,
    oob_taps: i32,
    out_block: &mut [i32],
) {
    let p = desc.w_bits as usize;
    let q = desc.x_bits as usize;
    for (jj, out_v) in out_block.iter_mut().enumerate() {
        let co = co0 + jj;
        let mut acc = 0i32;
        for s in 0..p {
            let oob_w_popc: i32 = oob
                .iter()
                .map(|&tap| weights.seg_popc(s as u32, co, tap))
                .sum();
            for t in 0..q {
                let popc = tile[(jj * q + t) * p + s];
                let adj = match case {
                    EmulationCase::AndUnsigned => popc,
                    EmulationCase::XorSignedBinary => {
                        correct_xor_window(popc, desc.cin as i32, valid_taps, oob_w_popc, oob_taps)
                    }
                    EmulationCase::AndWeightTransformed => 2 * popc - plane_popc[t],
                    EmulationCase::AndActivationTransformed => {
                        2 * popc - valid_row_popc(weights.row_popc(s as u32, co), oob_w_popc)
                    }
                    // The XOR-only (Turing) derivations are supported at
                    // the GEMM level (`apmm_cpu_with_plan`); the direct
                    // convolution always plans for the target device via
                    // `plan(..)`, which never emits them here.
                    EmulationCase::XorDerivedUnsigned
                    | EmulationCase::XorDerivedWeightTransformed
                    | EmulationCase::XorDerivedActivationTransformed => {
                        unreachable!("conv kernels use the Ampere plan")
                    }
                };
                acc += adj << (s + t);
            }
        }
        *out_v = acc;
    }
}

/// Sequential zero-allocation core of the prepared conv path: identical
/// arithmetic (same per-element accumulation order, hence bit-identical
/// results) to [`conv_exec`], running on the calling thread with a reused
/// window gather. Serving workers are the concurrency unit for this path.
pub(crate) fn conv_exec_seq(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    eplan_state: &ConvExecPlan,
    scratch: &mut WindowScratch,
    out: &mut Vec<i32>,
) {
    let (n, h, w, c) = input.shape();
    assert!(n <= desc.batch, "input batch exceeds plan batch");
    assert_eq!((h, w, c), (desc.h, desc.w, desc.cin));
    assert_eq!(input.bits(), desc.x_bits);
    assert_eq!(input.encoding(), desc.x_enc);
    let (cout, taps, cin, _padded) = weights.dims();
    assert_eq!(cout, desc.cout);
    assert_eq!(taps, desc.kh * desc.kw);
    assert_eq!(cin, desc.cin);

    let ConvExecPlan {
        eplan,
        fill: _,
        fill_pattern,
        micro,
        arm,
    } = eplan_state;
    let eplan = *eplan;
    let arm = arm.sanitized();
    let need_popc = eplan.case == EmulationCase::AndWeightTransformed;

    let (oh, ow) = (desc.out_h(), desc.out_w());
    let p = desc.w_bits as usize;
    let q = desc.x_bits as usize;
    let pixels = n * oh * ow;
    let wpt = input.words_per_pixel();
    let plane_words = taps * wpt;
    // Every element of `[0, pixels·cout)` is stored by the loop below, so
    // the accumulator reshape pays no zeroing pass.
    apnn_bitpack::resize_for_overwrite(out, pixels * cout);

    let MicroTile { jb, kb } = micro.sanitized();
    let w_view = PlaneView::from_bitplanes(weights.planes());
    let mut tile = [0i32; MAX_TILE];
    for pix in 0..pixels {
        let b = pix / (oh * ow);
        let oy = (pix / ow) % oh;
        let ox = pix % ow;
        // The stride-1 fast path: within an output row the previous
        // pixel's gather is still in the scratch, one input column to the
        // left — shift-reuse the overlapping taps instead of re-copying
        // the full window.
        let shift_prev = desc.stride == 1 && ox > 0;
        gather_window_seq(
            desc,
            input,
            fill_pattern,
            b,
            oy,
            ox,
            need_popc,
            shift_prev,
            scratch,
        );
        let valid_taps = (taps - scratch.oob.len()) as i32;
        let oob_taps = scratch.oob.len() as i32;
        let win_view = PlaneView::from_flat(&scratch.win, q, plane_words);

        let chunk = &mut out[pix * cout..(pix + 1) * cout];
        let mut co0 = 0;
        while co0 < cout {
            let jbc = jb.min(cout - co0);
            // A-side = the gathered window (q planes, shared by the whole
            // output-channel block), B-side = the weight rows: the tile
            // comes back `[j][t][s]`-indexed.
            let live = &mut tile[..jbc * q * p];
            popc_tile(eplan.op, arm, &win_view, 0, &w_view, co0, jbc, kb, live);
            combine_conv_block(
                desc,
                weights,
                eplan.case,
                live,
                co0,
                &scratch.oob,
                &scratch.popc,
                valid_taps,
                oob_taps,
                &mut chunk[co0..co0 + jbc],
            );
            co0 += jbc;
        }
    }
}

/// Sequential fused execution: [`conv_exec_seq`] + in-place pooling +
/// quantizing epilogue, packing the next layer's channel-major activations
/// into the caller-owned `out` tensor. The whole pipeline is
/// allocation-free once `scratch` and `out` have reached the plan's
/// full-batch capacity.
///
/// `residual` adds a same-shaped NHWC i32 buffer into the raw accumulators
/// *before* the pool/epilogue run — the exact-i32 requantization point of a
/// fused residual block: `quantize(epi(acc + residual))`, with no
/// intermediate rounding between the two integer paths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_exec_fused_seq(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    eplan_state: &ConvExecPlan,
    residual: Option<&[i32]>,
    pool: Option<Pool2>,
    epi: &Epilogue,
    scratch: &mut ConvScratch,
    out: &mut BitTensor4,
) {
    let bits = epi
        .output_bits()
        .expect("fused conv stages must end in quantization");
    let ConvScratch {
        window,
        acc,
        pooled,
    } = scratch;
    conv_exec_seq(desc, weights, input, eplan_state, window, acc);
    if let Some(res) = residual {
        assert_eq!(
            res.len(),
            acc.len(),
            "residual buffer must match the accumulator shape"
        );
        for (a, r) in acc.iter_mut().zip(res) {
            *a += r;
        }
    }
    let batch = input.shape().0;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let cout = desc.cout;
    let (ph, pw, vals): (usize, usize, &[i32]) = match pool {
        None => (oh, ow, acc),
        Some(kind) => {
            pool2_i32_into(acc, batch, oh, ow, cout, kind, pooled);
            (oh / 2, ow / 2, pooled)
        }
    };
    // `set_code` stores every real-channel bit of every plane for each of
    // the `batch` images below, and channel-padding bits are zero
    // inductively (this slot only ever holds outputs of this stage, whose
    // padding was zeroed at construction and never set since), so the
    // reshape skips the zeroing pass of `reset_zeros`.
    out.reset_for_overwrite(batch, ph, pw, cout, bits, Encoding::ZeroOne);
    for b in 0..batch {
        for py in 0..ph {
            for px in 0..pw {
                for co in 0..cout {
                    let a = vals[((b * ph + py) * pw + px) * cout + co];
                    out.set_code(b, py, px, co, epi.apply_to_code(a, co));
                }
            }
        }
    }
}

/// Direct convolution returning NHWC i32 accumulators.
pub fn conv_cpu(desc: &ConvDesc, weights: &ConvWeights, input: &BitTensor4) -> Vec<i32> {
    let (n, ..) = input.shape();
    assert_eq!(n, desc.batch, "batch mismatch");
    conv_exec(desc, weights, input, &ConvExecPlan::new(desc, weights))
}

/// [`conv_cpu`] with an explicit microkernel tile — the knob the
/// differential proptests and the kernel-level bench sweep turn. Any tile
/// is bit-identical (exact i32 accumulation); only throughput moves.
pub fn conv_cpu_with_micro(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    micro: MicroTile,
) -> Vec<i32> {
    let (n, ..) = input.shape();
    assert_eq!(n, desc.batch, "batch mismatch");
    let state = ConvExecPlan::new(desc, weights).with_micro(micro);
    conv_exec(desc, weights, input, &state)
}

/// [`conv_cpu_with_micro`] with an explicit popcount arm as well — the
/// differential tests pin both knobs; every (tile, arm) pair is
/// bit-identical.
pub fn conv_cpu_tuned(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    micro: MicroTile,
    arm: PopcntArm,
) -> Vec<i32> {
    let (n, ..) = input.shape();
    assert_eq!(n, desc.batch, "batch mismatch");
    let state = ConvExecPlan::new(desc, weights)
        .with_micro(micro)
        .with_arm(arm);
    conv_exec(desc, weights, input, &state)
}

/// Shared core: convolve `input` (whose batch may be ≤ `desc.batch` when a
/// compiled plan serves a partial shard) with prepared invariants.
pub(crate) fn conv_exec(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    eplan_state: &ConvExecPlan,
) -> Vec<i32> {
    let (n, h, w, c) = input.shape();
    assert!(n <= desc.batch, "input batch exceeds plan batch");
    assert_eq!((h, w, c), (desc.h, desc.w, desc.cin));
    assert_eq!(input.bits(), desc.x_bits);
    assert_eq!(input.encoding(), desc.x_enc);
    let (cout, taps, cin, _padded) = weights.dims();
    assert_eq!(cout, desc.cout);
    assert_eq!(taps, desc.kh * desc.kw);
    assert_eq!(cin, desc.cin);

    let ConvExecPlan {
        eplan,
        fill,
        fill_pattern,
        micro,
        arm,
    } = eplan_state;
    let (eplan, fill) = (*eplan, *fill);
    let arm = arm.sanitized();
    let need_popc = eplan.case == EmulationCase::AndWeightTransformed;

    let (oh, ow) = (desc.out_h(), desc.out_w());
    let p = desc.w_bits as usize;
    let q = desc.x_bits as usize;
    let pixels = n * oh * ow;
    let mut out = vec![0i32; pixels * cout];
    if pixels == 0 {
        return out;
    }
    let MicroTile { jb, kb } = micro.sanitized();
    let plane_words = taps * input.words_per_pixel();
    let w_view = PlaneView::from_bitplanes(weights.planes());

    out.par_chunks_mut(cout).enumerate().for_each_init(
        // One accumulator tile per pool participant, reused across
        // every output pixel it claims (popc_tile zeroes the live
        // prefix itself — no per-pixel 2 KiB init).
        || [0i32; MAX_TILE],
        |tile, (pix, chunk)| {
            let b = pix / (oh * ow);
            let oy = (pix / ow) % oh;
            let ox = pix % ow;
            let win = gather_window(desc, input, fill, fill_pattern, b, oy, ox, need_popc);
            let valid_taps = (taps - win.oob_taps.len()) as i32;
            let oob_taps = win.oob_taps.len() as i32;
            let win_view = PlaneView::from_plane_rows(&win.planes, plane_words);

            let mut co0 = 0;
            while co0 < cout {
                let jbc = jb.min(cout - co0);
                let live = &mut tile[..jbc * q * p];
                popc_tile(eplan.op, arm, &win_view, 0, &w_view, co0, jbc, kb, live);
                combine_conv_block(
                    desc,
                    weights,
                    eplan.case,
                    live,
                    co0,
                    &win.oob_taps,
                    &win.plane_popc,
                    valid_taps,
                    oob_taps,
                    &mut chunk[co0..co0 + jbc],
                );
                co0 += jbc;
            }
        },
    );
    out
}

/// Convolution with fused 2×2 pooling and element-wise epilogue (§5.2).
pub fn conv_cpu_fused(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    pool: Option<Pool2>,
    epi: &Epilogue,
) -> ConvOutput {
    let state = ConvExecPlan::new(desc, weights);
    conv_exec_fused(desc, weights, input, &state, pool, epi)
}

/// Fused 2×2/stride-2 pooling over NHWC i32 accumulators — the shared
/// implementation behind the fused kernels and compile-time calibration.
pub fn pool2_i32(
    y: &[i32],
    batch: usize,
    oh: usize,
    ow: usize,
    cout: usize,
    kind: Pool2,
) -> Vec<i32> {
    let mut v = Vec::new();
    pool2_i32_into(y, batch, oh, ow, cout, kind, &mut v);
    v
}

/// [`pool2_i32`] writing into a caller-owned buffer (allocation-free once
/// `out` has reached its peak capacity).
pub fn pool2_i32_into(
    y: &[i32],
    batch: usize,
    oh: usize,
    ow: usize,
    cout: usize,
    kind: Pool2,
    out: &mut Vec<i32>,
) {
    let ph = oh / 2;
    let pw = ow / 2;
    // Every pooled element is stored below — no zeroing pass needed.
    apnn_bitpack::resize_for_overwrite(out, batch * ph * pw * cout);
    let v = out;
    for b in 0..batch {
        for py in 0..ph {
            for px in 0..pw {
                for co in 0..cout {
                    let at = |dy: usize, dx: usize| {
                        y[((b * oh + 2 * py + dy) * ow + 2 * px + dx) * cout + co]
                    };
                    let vv = match kind {
                        Pool2::Max => at(0, 0).max(at(0, 1)).max(at(1, 0)).max(at(1, 1)),
                        Pool2::Avg => (at(0, 0) + at(0, 1) + at(1, 0) + at(1, 1)).div_euclid(4),
                    };
                    v[((b * ph + py) * pw + px) * cout + co] = vv;
                }
            }
        }
    }
}

/// [`conv_exec`] + fused pooling/epilogue over the actual input batch.
pub(crate) fn conv_exec_fused(
    desc: &ConvDesc,
    weights: &ConvWeights,
    input: &BitTensor4,
    eplan_state: &ConvExecPlan,
    pool: Option<Pool2>,
    epi: &Epilogue,
) -> ConvOutput {
    let y = conv_exec(desc, weights, input, eplan_state);
    let batch = input.shape().0;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let cout = desc.cout;

    // Optional fused pooling on the i32 accumulators.
    let (ph, pw, pooled) = match pool {
        None => (oh, ow, y),
        Some(kind) => (oh / 2, ow / 2, pool2_i32(&y, batch, oh, ow, cout, kind)),
    };

    match epi.output_bits() {
        None => {
            // Element-wise epilogue without quantization keeps i32.
            let mut v = pooled;
            if !epi.ops().is_empty() {
                for (idx, e) in v.iter_mut().enumerate() {
                    let co = idx % cout;
                    *e = epi.apply(*e, co) as i32;
                }
            }
            ConvOutput::Int32(v)
        }
        Some(bits) => {
            let mut t = BitTensor4::zeros(batch, ph, pw, cout, bits, Encoding::ZeroOne);
            for b in 0..batch {
                for py in 0..ph {
                    for px in 0..pw {
                        for co in 0..cout {
                            let acc = pooled[((b * ph + py) * pw + px) * cout + co];
                            t.set_code(b, py, px, co, epi.apply_to_code(acc, co));
                        }
                    }
                }
            }
            ConvOutput::Packed(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_i32;
    use apnn_bitpack::{Layout, Tensor4};

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    /// Build packed input + decoded reference values.
    fn make_input(desc: &ConvDesc, seed: &mut u64) -> (BitTensor4, Vec<i32>) {
        let codes = Tensor4::<u32>::from_fn(
            desc.batch,
            desc.cin,
            desc.h,
            desc.w,
            Layout::Nhwc,
            |_, _, _, _| (lcg(seed) as u32) % (1 << desc.x_bits),
        );
        let packed = BitTensor4::from_tensor(&codes, desc.x_bits, desc.x_enc);
        // Decoded NHWC values.
        let mut vals = vec![0i32; desc.batch * desc.h * desc.w * desc.cin];
        for b in 0..desc.batch {
            for y in 0..desc.h {
                for x in 0..desc.w {
                    for c in 0..desc.cin {
                        vals[((b * desc.h + y) * desc.w + x) * desc.cin + c] =
                            desc.x_enc.code_value(codes.get(b, c, y, x), desc.x_bits);
                    }
                }
            }
        }
        (packed, vals)
    }

    fn make_weights(desc: &ConvDesc, seed: &mut u64) -> (ConvWeights, Vec<i32>) {
        let n = desc.cout * desc.kh * desc.kw * desc.cin;
        let codes: Vec<u32> = (0..n)
            .map(|_| (lcg(seed) as u32) % (1 << desc.w_bits))
            .collect();
        let w = ConvWeights::from_codes(desc, &codes);
        let vals: Vec<i32> = codes
            .iter()
            .map(|&c| desc.w_enc.code_value(c, desc.w_bits))
            .collect();
        (w, vals)
    }

    fn check_against_reference(desc: &ConvDesc, seed: u64) {
        let mut seed = seed;
        let (input, x_vals) = make_input(desc, &mut seed);
        let (weights, w_vals) = make_weights(desc, &mut seed);
        let got = conv_cpu(desc, &weights, &input);
        let want = conv2d_i32(
            &x_vals,
            &w_vals,
            desc.batch,
            desc.h,
            desc.w,
            desc.cin,
            desc.cout,
            desc.kh,
            desc.kw,
            desc.stride,
            desc.pad,
        );
        assert_eq!(got, want, "desc {desc:?}");
    }

    #[test]
    fn case1_unsigned_various_shapes() {
        check_against_reference(&ConvDesc::unsigned(1, 3, 5, 4, 3, 1, 1, 1, 2), 1);
        check_against_reference(&ConvDesc::unsigned(2, 7, 8, 5, 3, 1, 1, 2, 2), 2);
        check_against_reference(&ConvDesc::unsigned(1, 130, 4, 3, 3, 1, 1, 1, 3), 3);
        check_against_reference(&ConvDesc::unsigned(1, 4, 9, 2, 5, 2, 2, 2, 1), 4);
        check_against_reference(&ConvDesc::unsigned(1, 3, 6, 2, 1, 1, 0, 3, 3), 5);
    }

    #[test]
    fn case2_signed_binary_with_oob_padding() {
        // ±1 weights and activations with pad=1 exercises the counter
        // correction on every border pixel.
        let mut desc = ConvDesc::unsigned(1, 5, 6, 4, 3, 1, 1, 1, 1);
        desc.w_enc = Encoding::PlusMinusOne;
        desc.x_enc = Encoding::PlusMinusOne;
        check_against_reference(&desc, 7);
        // Bigger pad → windows fully outside rows exist.
        let mut desc = ConvDesc::unsigned(2, 3, 4, 3, 3, 1, 2, 1, 1);
        desc.w_enc = Encoding::PlusMinusOne;
        desc.x_enc = Encoding::PlusMinusOne;
        check_against_reference(&desc, 8);
    }

    #[test]
    fn case3_signed_weights_unsigned_activations() {
        let mut desc = ConvDesc::unsigned(1, 6, 6, 4, 3, 1, 1, 1, 2);
        desc.w_enc = Encoding::PlusMinusOne;
        check_against_reference(&desc, 9);
        let mut desc = ConvDesc::unsigned(2, 9, 5, 3, 3, 2, 1, 1, 4);
        desc.w_enc = Encoding::PlusMinusOne;
        check_against_reference(&desc, 10);
    }

    #[test]
    fn case3_mirrored_unsigned_weights_signed_activations() {
        let mut desc = ConvDesc::unsigned(1, 5, 5, 3, 3, 1, 1, 2, 1);
        desc.x_enc = Encoding::PlusMinusOne;
        check_against_reference(&desc, 11);
    }

    #[test]
    fn fused_pool_and_quantize() {
        let desc = ConvDesc::unsigned(1, 4, 8, 3, 3, 1, 1, 1, 2);
        let mut seed = 13;
        let (input, x_vals) = make_input(&desc, &mut seed);
        let (weights, w_vals) = make_weights(&desc, &mut seed);
        let epi = Epilogue::quantize(4.0, 0.0, 2);
        let out = conv_cpu_fused(&desc, &weights, &input, Some(Pool2::Max), &epi);
        let ConvOutput::Packed(packed) = out else {
            panic!("expected packed")
        };
        let (n, ph, pw, c) = packed.shape();
        assert_eq!((n, ph, pw, c), (1, 4, 4, 3));

        // Oracle: reference conv → max pool → quantize.
        let y = conv2d_i32(&x_vals, &w_vals, 1, 8, 8, 4, 3, 3, 3, 1, 1);
        let (oh, ow) = (8, 8);
        for py in 0..4 {
            for px in 0..4 {
                for co in 0..3 {
                    let at =
                        |dy: usize, dx: usize| y[(((2 * py + dy) * ow) + 2 * px + dx) * 3 + co];
                    let m = at(0, 0).max(at(0, 1)).max(at(1, 0)).max(at(1, 1));
                    assert_eq!(packed.get_code(0, py, px, co), epi.apply_to_code(m, co));
                }
            }
        }
        let _ = oh;
    }

    #[test]
    fn sequential_workspace_core_matches_pooled_path_every_case() {
        let mut descs = vec![
            ConvDesc::unsigned(2, 5, 6, 4, 3, 1, 1, 2, 2),
            ConvDesc::unsigned(1, 130, 4, 3, 3, 1, 1, 1, 3),
        ];
        // ±1/±1 (pad-1 + counter correction) and the two Case III forms.
        let mut d = ConvDesc::unsigned(1, 5, 6, 4, 3, 1, 1, 1, 1);
        d.w_enc = Encoding::PlusMinusOne;
        d.x_enc = Encoding::PlusMinusOne;
        descs.push(d);
        let mut d = ConvDesc::unsigned(2, 9, 5, 3, 3, 2, 1, 1, 4);
        d.w_enc = Encoding::PlusMinusOne;
        descs.push(d);
        let mut d = ConvDesc::unsigned(1, 5, 5, 3, 3, 1, 1, 2, 1);
        d.x_enc = Encoding::PlusMinusOne;
        descs.push(d);

        let mut scratch = WindowScratch::default();
        let mut out = Vec::new();
        for (i, desc) in descs.iter().enumerate() {
            let mut seed = 100 + i as u64;
            let (input, _) = make_input(desc, &mut seed);
            let (weights, _) = if desc.w_enc == Encoding::PlusMinusOne {
                let n = desc.cout * desc.kh * desc.kw * desc.cin;
                let vals: Vec<i32> = (0..n)
                    .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
                    .collect();
                (ConvWeights::from_signed(desc, &vals), vals)
            } else {
                make_weights(desc, &mut seed)
            };
            let state = ConvExecPlan::new(desc, &weights);
            // One scratch reused across every desc: shapes shrink and grow.
            conv_exec_seq(desc, &weights, &input, &state, &mut scratch, &mut out);
            assert_eq!(out, conv_cpu(desc, &weights, &input), "desc {desc:?}");
        }
    }

    #[test]
    fn every_micro_tile_is_bit_identical_for_conv() {
        let mut descs = vec![
            // Stride-1 with padding: the sequential path takes the
            // shift-reuse window gather on every non-leading column.
            ConvDesc::unsigned(2, 5, 7, 9, 3, 1, 1, 2, 2),
            // Stride 2 (full gather every pixel) and a wide-kernel shape.
            ConvDesc::unsigned(1, 4, 9, 5, 5, 2, 2, 1, 2),
        ];
        let mut d = ConvDesc::unsigned(1, 5, 6, 4, 3, 1, 1, 1, 1);
        d.w_enc = Encoding::PlusMinusOne;
        d.x_enc = Encoding::PlusMinusOne;
        descs.push(d);
        let mut d = ConvDesc::unsigned(2, 6, 5, 7, 3, 1, 1, 1, 3);
        d.w_enc = Encoding::PlusMinusOne;
        descs.push(d);

        for (i, desc) in descs.iter().enumerate() {
            let mut seed = 300 + i as u64;
            let (input, _) = make_input(desc, &mut seed);
            let weights = if desc.w_enc == Encoding::PlusMinusOne {
                let n = desc.cout * desc.kh * desc.kw * desc.cin;
                let vals: Vec<i32> = (0..n)
                    .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
                    .collect();
                ConvWeights::from_signed(desc, &vals)
            } else {
                make_weights(desc, &mut seed).0
            };
            let want = conv_cpu(desc, &weights, &input);
            let mut scratch = WindowScratch::default();
            let mut out = Vec::new();
            for jb in [1usize, 2, 8] {
                for kb in [1usize, 4, 64] {
                    let micro = MicroTile { jb, kb };
                    assert_eq!(
                        conv_cpu_with_micro(desc, &weights, &input, micro),
                        want,
                        "parallel jb={jb} kb={kb} desc {desc:?}"
                    );
                    let state = ConvExecPlan::new(desc, &weights).with_micro(micro);
                    conv_exec_seq(desc, &weights, &input, &state, &mut scratch, &mut out);
                    assert_eq!(out, want, "seq jb={jb} kb={kb} desc {desc:?}");
                }
            }
        }
    }

    #[test]
    fn every_available_arm_is_bit_identical_for_conv() {
        // One Ampere case per encoding class, run through every popcount
        // arm on both the parallel and sequential paths. Unavailable arms
        // sanitize to the detected best — still exact, so asserting on
        // the full set is safe on any host.
        let mut descs = vec![ConvDesc::unsigned(2, 5, 7, 9, 3, 1, 1, 2, 2)];
        let mut d = ConvDesc::unsigned(1, 5, 6, 4, 3, 1, 1, 1, 1);
        d.w_enc = Encoding::PlusMinusOne;
        d.x_enc = Encoding::PlusMinusOne;
        descs.push(d);
        let mut d = ConvDesc::unsigned(2, 6, 5, 7, 3, 1, 1, 1, 3);
        d.w_enc = Encoding::PlusMinusOne;
        descs.push(d);

        for (i, desc) in descs.iter().enumerate() {
            let mut seed = 700 + i as u64;
            let (input, _) = make_input(desc, &mut seed);
            let weights = if desc.w_enc == Encoding::PlusMinusOne {
                let n = desc.cout * desc.kh * desc.kw * desc.cin;
                let vals: Vec<i32> = (0..n)
                    .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
                    .collect();
                ConvWeights::from_signed(desc, &vals)
            } else {
                make_weights(desc, &mut seed).0
            };
            let want = conv_cpu(desc, &weights, &input);
            let mut scratch = WindowScratch::default();
            let mut out = Vec::new();
            for arm in PopcntArm::ALL {
                let state = ConvExecPlan::new(desc, &weights).with_arm(arm);
                assert_eq!(
                    conv_exec(desc, &weights, &input, &state),
                    want,
                    "parallel arm {} desc {desc:?}",
                    arm.label()
                );
                conv_exec_seq(desc, &weights, &input, &state, &mut scratch, &mut out);
                assert_eq!(out, want, "seq arm {} desc {desc:?}", arm.label());
            }
        }
    }

    #[test]
    fn ad_hoc_conv_entry_reuses_the_shape_keyed_memo() {
        // Satellite contract: `conv_cpu` rebuilds its `ConvExecPlan` per
        // call, but tile selection must go through the shape-keyed memo —
        // first call per layer shape selects (and, in measured mode,
        // benches) once; repeats move neither counter. The shape is unique
        // to this test so the first call is a guaranteed memo miss.
        let desc = ConvDesc::unsigned(1, 37, 5, 13, 3, 1, 1, 2, 2);
        let mut seed = 41;
        let (input, _) = make_input(&desc, &mut seed);
        let (weights, _) = make_weights(&desc, &mut seed);

        let s = crate::stats::scope();
        let y1 = conv_cpu(&desc, &weights, &input);
        assert_eq!(s.micro_tunes(), 1, "first call per shape selects once");
        assert!(s.micro_benches() <= 1);
        let (tunes, benches) = (s.micro_tunes(), s.micro_benches());
        let y2 = conv_cpu(&desc, &weights, &input);
        let y3 = conv_cpu(&desc, &weights, &input);
        assert_eq!(
            (s.micro_tunes(), s.micro_benches()),
            (tunes, benches),
            "repeat calls must be memo hits"
        );
        assert_eq!(y1, y2);
        assert_eq!(y1, y3);
    }

    #[test]
    fn shifted_window_gather_matches_full_gather() {
        // Drive the stride-1 shift path directly against a fresh full
        // gather for every pixel of a padded feature map, including the
        // Case-III popcount bookkeeping.
        let mut desc = ConvDesc::unsigned(1, 5, 8, 3, 3, 1, 1, 1, 2);
        desc.w_enc = Encoding::PlusMinusOne; // AndWeightTransformed → need_popc
        let mut seed = 23;
        let (input, _) = make_input(&desc, &mut seed);
        let n = desc.cout * desc.kh * desc.kw * desc.cin;
        let vals: Vec<i32> = (0..n)
            .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
            .collect();
        let weights = ConvWeights::from_signed(&desc, &vals);
        let state = ConvExecPlan::new(&desc, &weights);

        let mut rolling = WindowScratch::default();
        let mut fresh = WindowScratch::default();
        for oy in 0..desc.out_h() {
            for ox in 0..desc.out_w() {
                let shift = ox > 0;
                gather_window_seq(
                    &desc,
                    &input,
                    &state.fill_pattern,
                    0,
                    oy,
                    ox,
                    true,
                    shift,
                    &mut rolling,
                );
                gather_window_seq(
                    &desc,
                    &input,
                    &state.fill_pattern,
                    0,
                    oy,
                    ox,
                    true,
                    false,
                    &mut fresh,
                );
                assert_eq!(rolling.win, fresh.win, "window words at ({oy},{ox})");
                assert_eq!(rolling.oob, fresh.oob, "oob taps at ({oy},{ox})");
                assert_eq!(rolling.popc, fresh.popc, "plane popc at ({oy},{ox})");
            }
        }
    }

    #[test]
    fn sequential_fused_matches_allocating_fused() {
        let desc = ConvDesc::unsigned(2, 4, 8, 3, 3, 1, 1, 1, 2);
        let mut seed = 13;
        let (input, _) = make_input(&desc, &mut seed);
        let (weights, _) = make_weights(&desc, &mut seed);
        let epi = Epilogue::quantize(4.0, 0.0, 2);
        let state = ConvExecPlan::new(&desc, &weights);
        let mut scratch = ConvScratch::default();
        let mut packed = BitTensor4::zeros(1, 1, 1, 1, 1, Encoding::ZeroOne);
        for pool in [None, Some(Pool2::Max), Some(Pool2::Avg)] {
            conv_exec_fused_seq(
                &desc,
                &weights,
                &input,
                &state,
                None,
                pool,
                &epi,
                &mut scratch,
                &mut packed,
            );
            let ConvOutput::Packed(want) = conv_cpu_fused(&desc, &weights, &input, pool, &epi)
            else {
                panic!("expected packed")
            };
            assert_eq!(packed, want, "pool {pool:?}");
        }
    }

    #[test]
    fn residual_adds_into_raw_accumulators_before_the_epilogue() {
        let desc = ConvDesc::unsigned(2, 4, 8, 3, 3, 1, 1, 1, 2);
        let mut seed = 29;
        let (input, _) = make_input(&desc, &mut seed);
        let (weights, _) = make_weights(&desc, &mut seed);
        let epi = Epilogue::quantize(4.0, 0.0, 2);
        let state = ConvExecPlan::new(&desc, &weights);
        let n = desc.batch * desc.out_h() * desc.out_w() * desc.cout;
        let res: Vec<i32> = (0..n).map(|i| (i as i32 % 11) - 5).collect();

        let mut scratch = ConvScratch::default();
        let mut packed = BitTensor4::zeros(1, 1, 1, 1, 1, Encoding::ZeroOne);
        conv_exec_fused_seq(
            &desc,
            &weights,
            &input,
            &state,
            Some(&res),
            None,
            &epi,
            &mut scratch,
            &mut packed,
        );

        // Oracle: raw accumulators + residual, then the epilogue.
        let raw = conv_cpu(&desc, &weights, &input);
        for b in 0..desc.batch {
            for y in 0..desc.out_h() {
                for x in 0..desc.out_w() {
                    for co in 0..desc.cout {
                        let idx = ((b * desc.out_h() + y) * desc.out_w() + x) * desc.cout + co;
                        let want = epi.apply_to_code(raw[idx] + res[idx], co);
                        assert_eq!(packed.get_code(b, y, x, co), want, "at {idx}");
                    }
                }
            }
        }
    }

    #[test]
    fn avg_pool_floors_toward_neg_infinity() {
        let desc = ConvDesc::unsigned(1, 1, 4, 1, 1, 1, 0, 1, 1);
        let mut seed = 17;
        let (input, _) = make_input(&desc, &mut seed);
        let (weights, _) = make_weights(&desc, &mut seed);
        let out = conv_cpu_fused(&desc, &weights, &input, Some(Pool2::Avg), &Epilogue::none());
        let ConvOutput::Int32(v) = out else {
            panic!("expected i32")
        };
        assert_eq!(v.len(), 4); // 2x2 pooled
    }
}
