//! Mapping APConv onto the simulated GPU.
//!
//! APConv shares the batched double-caching structure of APMM, so its
//! counters follow the same implicit-GEMM tile formulas; the convolution
//! specifics are (a) the activation-layout coalescing model — NPHWC reads
//! are coalesced, NCHW reads are strided (Fig. 4) — and (b) the optional
//! fused pooling stage between the accumulators and the quantizing store.

use apnn_sim::{launch, Coalescing, Counters, GpuSpec, KernelConfig, KernelReport, Precision};

use super::{ConvDesc, Pool2};
use crate::apmm::simmap::APMM_TC_EFFICIENCY;
use crate::apmm::TileConfig;
use crate::fusion::Epilogue;

/// Activation memory layout (the §4.2(a) ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActLayout {
    /// Channel-major packed planes: aligned, coalesced tap reads.
    Nphwc,
    /// Traditional layout: a bit-level window read touches `KW·P`-bit
    /// slivers scattered across rows — modeled as 4× sector amplification
    /// (a 3×3 window reads ≤ 12 useful bytes per 32-byte sector).
    Nchw,
}

impl ActLayout {
    fn pattern(self) -> Coalescing {
        match self {
            ActLayout::Nphwc => Coalescing::Coalesced,
            ActLayout::Nchw => Coalescing::Strided { waste: 4.0 },
        }
    }
}

/// Launch configuration for an APConv kernel.
pub fn kernel_config(desc: &ConvDesc, tile: &TileConfig) -> KernelConfig {
    let g = desc.as_gemm();
    KernelConfig {
        grid_blocks: tile.grid_blocks(g.batched_m(), g.batched_n()),
        warps_per_block: TileConfig::WARPS,
        shmem_per_block: tile.shmem_bytes(),
        regs_per_thread: 64,
        precision: Precision::Int1,
        efficiency: APMM_TC_EFFICIENCY,
    }
}

/// Closed-form counters + latency for the APConv kernel.
pub fn estimate(
    desc: &ConvDesc,
    tile: &TileConfig,
    spec: &GpuSpec,
    pool: Option<Pool2>,
    epi: Option<&Epilogue>,
    layout: ActLayout,
) -> KernelReport {
    estimate_with_efficiency(desc, tile, spec, pool, epi, layout, APMM_TC_EFFICIENCY)
}

/// [`estimate`] with an explicit kernel-efficiency factor — used to model
/// prior-work binary kernels (BSTC/TCBNN) that lack the paper's
/// optimizations.
#[allow(clippy::too_many_arguments)]
pub fn estimate_with_efficiency(
    desc: &ConvDesc,
    tile: &TileConfig,
    spec: &GpuSpec,
    pool: Option<Pool2>,
    epi: Option<&Epilogue>,
    layout: ActLayout,
    efficiency: f64,
) -> KernelReport {
    let g = desc.as_gemm();
    let mut cfg = kernel_config(desc, tile);
    cfg.efficiency = efficiency;
    let grid = cfg.grid_blocks as u64;
    let grid_m = g.batched_m().div_ceil(tile.bm) as u64;
    let _grid_n = g.batched_n().div_ceil(tile.bn) as u64;
    let k_steps = (g.k_padded() / tile.bk) as u64;

    let mut c = Counters::default();
    let w_tile_bytes = (tile.bm * tile.bk / 8) as u64;
    let x_tile_bytes = (tile.bn * tile.bk / 8) as u64;

    // Window-overlap (halo) reuse: the implicit-GEMM view reads every input
    // pixel once per tap (`KH·KW×`), but the kernel stages windows in shared
    // memory, so the block only fetches each unique input pixel ≈ once
    // (unique inputs per output ≈ stride², doubled for halo slack).
    let halo_reuse = ((2 * desc.stride * desc.stride) as f64 / (desc.kh * desc.kw) as f64).min(1.0);
    // Un-coalesced (NCHW) reads drag whole 32-byte sectors through the
    // entire memory hierarchy, so the waste factor amplifies L2 traffic too.
    let layout_waste = match layout.pattern() {
        Coalescing::Coalesced => 1.0,
        Coalescing::Strided { waste } => waste,
    };
    let x_block_bytes = ((k_steps * x_tile_bytes) as f64 * halo_reuse * layout_waste).ceil() as u64;

    c.global_load_bytes = grid * (k_steps * w_tile_bytes + x_block_bytes);
    // DRAM sees first-touch traffic only: the weight planes once (one block
    // column) and the packed input tensor once — everything else hits L2.
    // Weights are contiguous rows (coalesced); activations follow `layout`.
    c.global_sectors = (grid_m * k_steps * w_tile_bytes).div_ceil(32);
    let x_footprint =
        (desc.batch * desc.h * desc.w * desc.padded_c()) as u64 * desc.x_bits as u64 / 8;
    c.global_sectors += match layout.pattern() {
        Coalescing::Coalesced => x_footprint.div_ceil(32),
        Coalescing::Strided { waste } => ((x_footprint.div_ceil(32)) as f64 * waste).ceil() as u64,
    };
    c.syncs = grid * k_steps;
    let sh_write = w_tile_bytes + x_tile_bytes;
    let sh_read = 2 * w_tile_bytes + 4 * x_tile_bytes;
    c.shmem_bytes = grid * k_steps * (sh_write + sh_read);

    let frags = ((tile.bm / 8) * (tile.bn / 8) * (tile.bk / 128)) as u64;
    c.bmma_ops = grid * k_steps * frags;
    c.tc_macs = c.bmma_ops * apnn_sim::bmma::MACS_PER_BMMA;

    // Bit combination.
    c.cuda_int_ops = grid * (tile.bm * tile.bn) as u64;
    c.shmem_bytes += grid * (tile.bm * tile.bn * 8) as u64;

    // Pool + epilogue + stores.
    let conv_outputs = (g.m * g.n) as u64;
    let final_outputs = if pool.is_some() {
        (desc.cout * desc.batch * (desc.out_h() / 2) * (desc.out_w() / 2)) as u64
    } else {
        conv_outputs
    };
    if pool.is_some() {
        // 3 compares/adds per pooled element over the 2×2 group.
        c.cuda_int_ops += 3 * final_outputs;
    }
    let (epi_int, epi_fp) = epi.map(|e| e.cost_per_element()).unwrap_or((0, 0));
    let out_bits = epi.and_then(|e| e.output_bits());
    let pack_int = out_bits.map(|b| b as u64).unwrap_or(0);
    c.cuda_int_ops += final_outputs * (epi_int + pack_int);
    c.cuda_flops += final_outputs * epi_fp;

    let store_bytes = match out_bits {
        None => final_outputs * 4,
        Some(bits) => (final_outputs * bits as u64).div_ceil(8),
    };
    c.global_store_bytes = store_bytes;
    c.global_sectors += store_bytes.div_ceil(32);

    launch::finish(spec, &cfg, c)
}

/// Measure the *true* activation-fetch amplification of a tiling: unique
/// input pixels touched per block (what a shared-memory-staged kernel
/// loads), relative to one pass over the input.
///
/// This is the quantity the `halo_reuse` approximation in
/// [`estimate_with_efficiency`] models as `2·stride²/(KH·KW)` of the naive
/// im2row traffic; `tests` assert the approximation brackets the measured
/// value. Exposed for model auditing.
pub fn measured_input_amplification(desc: &ConvDesc, tile: &TileConfig) -> f64 {
    let g = desc.as_gemm();
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let q = desc.x_bits as usize;
    let grid_n = g.batched_n().div_ceil(tile.bn);
    let mut unique_loads = 0u64;
    // Walk block columns of the batched N space; each covers bn/q output
    // pixels whose windows define the block's unique input set.
    let mut seen = vec![0u32; desc.h * desc.w];
    let mut stamp = 0u32;
    for bj in 0..grid_n {
        stamp += 1;
        let lo = bj * tile.bn / q;
        let hi = ((bj + 1) * tile.bn).min(g.batched_n()).div_ceil(q);
        for pix in lo..hi.min(g.n) {
            let within = pix % (oh * ow);
            let (oy, ox) = (within / ow, within % ow);
            for ky in 0..desc.kh {
                for kx in 0..desc.kw {
                    let iy = (oy * desc.stride + ky) as isize - desc.pad as isize;
                    let ix = (ox * desc.stride + kx) as isize - desc.pad as isize;
                    if iy < 0 || ix < 0 || iy >= desc.h as isize || ix >= desc.w as isize {
                        continue;
                    }
                    let cell = iy as usize * desc.w + ix as usize;
                    if seen[cell] != stamp {
                        seen[cell] = stamp;
                        unique_loads += 1;
                    }
                }
            }
        }
    }
    // Amplification relative to one pass over the (batch=1 slice of the)
    // input; block rows re-reading via L2 are not counted here.
    unique_loads as f64 / (desc.h * desc.w) as f64
}

/// A generic element-wise kernel (pool / BN / quantize running *unfused*):
/// priced as pure memory traffic + CUDA-core work with full occupancy.
pub fn elementwise_kernel(
    spec: &GpuSpec,
    load_bytes: u64,
    store_bytes: u64,
    int_ops: u64,
    flops: u64,
) -> KernelReport {
    // Enough blocks to saturate; element-wise kernels are launched wide.
    let cfg = KernelConfig {
        grid_blocks: (spec.num_sms as usize) * 8,
        warps_per_block: 8,
        shmem_per_block: 0,
        regs_per_thread: 32,
        precision: Precision::Fp32,
        efficiency: 1.0,
    };
    let c = Counters {
        global_load_bytes: load_bytes,
        global_store_bytes: store_bytes,
        global_sectors: load_bytes.div_ceil(32) + store_bytes.div_ceil(32),
        cuda_int_ops: int_ops,
        cuda_flops: flops,
        ..Default::default()
    };
    launch::finish(spec, &cfg, c)
}

/// Latency of the *unfused* pipeline for the Fig. 10 comparison: a conv
/// kernel storing i32, a separate pooling kernel, and a separate
/// quantization kernel — each paying its own launch and global-memory round
/// trip.
pub fn unfused_pipeline(
    desc: &ConvDesc,
    tile: &TileConfig,
    spec: &GpuSpec,
    pool: Pool2,
    epi: &Epilogue,
) -> f64 {
    let conv = estimate(desc, tile, spec, None, None, ActLayout::Nphwc);
    let conv_outputs = (desc.cout * desc.batch * desc.out_h() * desc.out_w()) as u64;
    let pooled_outputs = (desc.cout * desc.batch * (desc.out_h() / 2) * (desc.out_w() / 2)) as u64;
    let _ = pool;
    let pool_k = elementwise_kernel(
        spec,
        conv_outputs * 4,
        pooled_outputs * 4,
        3 * pooled_outputs,
        0,
    );
    let bits = epi.output_bits().unwrap_or(32) as u64;
    let (epi_int, epi_fp) = epi.cost_per_element();
    let quant_k = elementwise_kernel(
        spec,
        pooled_outputs * 4,
        (pooled_outputs * bits).div_ceil(8),
        pooled_outputs * (epi_int + bits),
        pooled_outputs * epi_fp,
    );
    conv.time_s() + pool_k.time_s() + quant_k.time_s()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig10_desc(c: usize) -> ConvDesc {
        ConvDesc::unsigned(1, c, 16, c, 3, 1, 1, 1, 2)
    }

    #[test]
    fn nchw_layout_is_slower() {
        let spec = GpuSpec::rtx3090();
        let desc = fig10_desc(256);
        let tile = TileConfig::new(32, 64);
        let good = estimate(&desc, &tile, &spec, None, None, ActLayout::Nphwc);
        let bad = estimate(&desc, &tile, &spec, None, None, ActLayout::Nchw);
        assert!(bad.counters.global_sectors > good.counters.global_sectors);
        assert!(bad.time_s() >= good.time_s());
    }

    #[test]
    fn fusion_beats_unfused_pipeline() {
        let spec = GpuSpec::rtx3090();
        for c in [128, 512, 1024] {
            let desc = fig10_desc(c);
            let tile = TileConfig::new(32, 64);
            let epi = Epilogue::quantize(8.0, 0.0, 2);
            let fused = estimate(
                &desc,
                &tile,
                &spec,
                Some(Pool2::Max),
                Some(&epi),
                ActLayout::Nphwc,
            );
            let unfused = unfused_pipeline(&desc, &tile, &spec, Pool2::Max, &epi);
            assert!(
                unfused > 1.2 * fused.time_s(),
                "C={c}: unfused {unfused} vs fused {}",
                fused.time_s()
            );
        }
    }

    #[test]
    fn pooled_stores_shrink() {
        let spec = GpuSpec::rtx3090();
        let desc = fig10_desc(128);
        let tile = TileConfig::new(32, 64);
        let epi = Epilogue::quantize(8.0, 0.0, 2);
        let plain = estimate(&desc, &tile, &spec, None, None, ActLayout::Nphwc);
        let pooled = estimate(
            &desc,
            &tile,
            &spec,
            Some(Pool2::Max),
            Some(&epi),
            ActLayout::Nphwc,
        );
        // i32 stores vs 2-bit stores of a 4× smaller map: 64× reduction.
        assert_eq!(
            plain.counters.global_store_bytes,
            64 * pooled.counters.global_store_bytes
        );
    }

    #[test]
    fn halo_model_brackets_measured_amplification() {
        // The closed-form halo_reuse approximation must agree with the
        // measured unique-pixel amplification within a small factor across
        // the evaluation workloads.
        for (c, k, stride, pad) in [
            (128usize, 3usize, 1usize, 1usize),
            (256, 3, 1, 1),
            (128, 5, 2, 2),
        ] {
            let desc = ConvDesc::unsigned(1, c, 16, c, k, stride, pad, 1, 2);
            let conv = crate::apconv::ApConv::new(desc);
            let measured = measured_input_amplification(&desc, &conv.tile);
            // The model's amplification (per block column): naive kh·kw
            // reads scaled by halo_reuse, per output pixel.
            let halo = ((2 * stride * stride) as f64 / (k * k) as f64).min(1.0);
            let outputs_per_input = (desc.out_h() * desc.out_w()) as f64 / (desc.h * desc.w) as f64;
            let modeled = (k * k) as f64 * halo * outputs_per_input;
            let ratio = measured / modeled;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "C={c} k={k} s={stride}: measured {measured:.2} vs modeled {modeled:.2}"
            );
        }
    }

    #[test]
    fn elementwise_kernel_is_memory_bound_for_big_maps() {
        let spec = GpuSpec::rtx3090();
        let r = elementwise_kernel(&spec, 100 << 20, 100 << 20, 1000, 0);
        assert!(matches!(r.cost.bound, apnn_sim::cost::Bound::Dram));
    }
}
