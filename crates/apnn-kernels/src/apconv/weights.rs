//! Packed convolution weights in implicit-GEMM row layout.

use apnn_bitpack::{BitMatrix, BitPlanes, Encoding};

use super::ConvDesc;

/// Convolution weights decomposed into bit planes and packed so that row
/// `c_out` of each plane is the implicit-GEMM K vector: `KH·KW` channel
/// segments, each padded to the 128-bit fragment boundary (matching the
/// NPHWC activation layout, so window gathers and weight rows align
/// word-for-word).
#[derive(Debug, Clone)]
pub struct ConvWeights {
    planes: BitPlanes,
    /// Per-plane, per-row, per-tap popcounts `w_seg_popc[s][cout][tap]` —
    /// the correction table used by the input-aware padding (§4.2(b)) for
    /// ±1 encodings.
    seg_popc: Vec<Vec<Vec<i32>>>,
    cout: usize,
    taps: usize,
    cin: usize,
    padded_c: usize,
}

impl ConvWeights {
    /// Pack weights given as unsigned codes in `(cout, kh, kw, cin)` order.
    ///
    /// For [`Encoding::PlusMinusOne`] the codes must be 0 (−1) / 1 (+1) and
    /// `bits` must be 1.
    pub fn from_codes(desc: &ConvDesc, codes: &[u32]) -> Self {
        assert_eq!(codes.len(), desc.cout * desc.kh * desc.kw * desc.cin);
        let padded_c = desc.padded_c();
        let taps = desc.kh * desc.kw;
        let k_bits = desc.k_bits();

        // Build per-plane bit matrices with the segmented layout.
        let mut plane_mats = Vec::with_capacity(desc.w_bits as usize);
        for s in 0..desc.w_bits {
            let mut m = BitMatrix::zeros(desc.cout, k_bits);
            for co in 0..desc.cout {
                for tap in 0..taps {
                    for ci in 0..desc.cin {
                        let code = codes[(co * taps + tap) * desc.cin + ci];
                        if (code >> s) & 1 != 0 {
                            m.set(co, tap * padded_c + ci, true);
                        }
                    }
                }
            }
            plane_mats.push(m);
        }

        // Segment popcounts for the padding corrections.
        let seg_popc = plane_mats
            .iter()
            .map(|m| {
                (0..desc.cout)
                    .map(|co| {
                        (0..taps)
                            .map(|tap| {
                                let mut acc = 0i32;
                                for ci in 0..desc.cin {
                                    acc += m.get(co, tap * padded_c + ci) as i32;
                                }
                                acc
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Wrap the matrices in a BitPlanes by reconstructing codes in the
        // segmented layout (keeps the BitPlanes invariants + encoding).
        let mut seg_codes = vec![0u32; desc.cout * k_bits];
        for (s, m) in plane_mats.iter().enumerate() {
            for co in 0..desc.cout {
                for bit in 0..k_bits {
                    if m.get(co, bit) {
                        seg_codes[co * k_bits + bit] |= 1 << s;
                    }
                }
            }
        }
        let planes = BitPlanes::from_codes(&seg_codes, desc.cout, k_bits, desc.w_bits, desc.w_enc);

        ConvWeights {
            planes,
            seg_popc,
            cout: desc.cout,
            taps,
            cin: desc.cin,
            padded_c,
        }
    }

    /// Pack ±1 weights given as values in `(cout, kh, kw, cin)` order.
    pub fn from_signed(desc: &ConvDesc, values: &[i32]) -> Self {
        assert_eq!(desc.w_enc, Encoding::PlusMinusOne);
        let codes: Vec<u32> = values
            .iter()
            .map(|&v| {
                debug_assert!(v == -1 || v == 1);
                (v > 0) as u32
            })
            .collect();
        Self::from_codes(desc, &codes)
    }

    /// The packed planes (rows = cout, cols = segmented K bits).
    #[inline]
    pub fn planes(&self) -> &BitPlanes {
        &self.planes
    }

    /// Popcount of plane `s`, output row `cout`, window tap `tap`.
    #[inline]
    pub fn seg_popc(&self, s: u32, cout: usize, tap: usize) -> i32 {
        self.seg_popc[s as usize][cout][tap]
    }

    /// Total popcount of plane `s`, row `cout` (all taps).
    pub fn row_popc(&self, s: u32, cout: usize) -> i32 {
        self.seg_popc[s as usize][cout].iter().sum()
    }

    /// Words per channel segment (= `padded_c / 64`).
    #[inline]
    pub fn words_per_tap(&self) -> usize {
        self.padded_c / 64
    }

    /// `(cout, taps, cin, padded_c)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.cout, self.taps, self.cin, self.padded_c)
    }

    /// Packed footprint in bytes (for dataflow accounting).
    pub fn packed_bytes(&self) -> usize {
        self.planes
            .planes()
            .iter()
            .map(|p| p.rows() * p.words_per_row() * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_desc() -> ConvDesc {
        ConvDesc::unsigned(1, 3, 4, 2, 3, 1, 1, 2, 1)
    }

    #[test]
    fn segmented_layout_roundtrip() {
        let desc = small_desc();
        let n = desc.cout * desc.kh * desc.kw * desc.cin;
        let codes: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let w = ConvWeights::from_codes(&desc, &codes);
        let (cout, taps, cin, padded_c) = w.dims();
        assert_eq!((cout, taps, cin, padded_c), (2, 9, 3, 128));
        // Check each bit landed at tap*padded_c + ci.
        for co in 0..cout {
            for tap in 0..taps {
                for ci in 0..cin {
                    let code = codes[(co * taps + tap) * cin + ci];
                    for s in 0..desc.w_bits {
                        assert_eq!(
                            w.planes().plane(s).get(co, tap * padded_c + ci),
                            (code >> s) & 1 != 0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn seg_popc_counts_bits_per_tap() {
        let desc = small_desc();
        let n = desc.cout * desc.kh * desc.kw * desc.cin;
        // All-ones codes: every tap popc = cin on plane 0 and 1 (code 3).
        let codes = vec![3u32; n];
        let w = ConvWeights::from_codes(&desc, &codes);
        for co in 0..2 {
            for tap in 0..9 {
                assert_eq!(w.seg_popc(0, co, tap), 3);
                assert_eq!(w.seg_popc(1, co, tap), 3);
            }
            assert_eq!(w.row_popc(0, co), 27);
        }
    }

    #[test]
    fn signed_weights_store_hat_bits() {
        let mut desc = small_desc();
        desc.w_bits = 1;
        desc.w_enc = Encoding::PlusMinusOne;
        let n = desc.cout * desc.kh * desc.kw * desc.cin;
        let values: Vec<i32> = (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let w = ConvWeights::from_signed(&desc, &values);
        // Stored bit is (v+1)/2 — exactly Ŵ of Case III.
        assert!(w.planes().plane(0).get(0, 0));
        assert!(!w.planes().plane(0).get(0, 1));
        assert_eq!(w.planes().encoding(), Encoding::PlusMinusOne);
    }
}
