//! The register-blocked multi-plane popcount microkernel — the **one**
//! inner loop every functional kernel path runs on.
//!
//! The paper's AP-BMMA tiles bit-planes through the memory hierarchy:
//! operand fragments are loaded once and reused across all `p·q`
//! plane-pair products, with batch-based double caching keeping them hot
//! (§4–5). The CPU analogue here is [`popc_tile`]: a single pass over the
//! packed K words that
//!
//! * walks K in `KB`-word blocks, so each streamed chunk of every plane is
//!   cache-resident while **all** plane pairs consume it (the old kernels
//!   re-streamed the whole activation row once per `(s, t)` pair);
//! * blocks `JB` B-side columns (batch columns for APMM, output channels
//!   for APConv) over each A-side chunk, amortizing those loads `JB`-fold
//!   — the register/L1 form of the paper's fragment reuse;
//! * accumulates all `pa·pb` plane-pair popcounts of the block into one
//!   stack-resident i32 tile, combining the words with the Harley–Seal
//!   merged popcount of [`apnn_bitpack::word`].
//!
//! Every accumulator is exact i32 arithmetic, so **any** tile shape is
//! bit-identical to any other (and to the pre-microkernel kernels): tiling
//! moves throughput, never results. The differential proptests drive this
//! across all emulation cases × block sizes × partial shards.

use apnn_bitpack::popcnt::{and_popcount_arm, xor_popcount_arm};
use apnn_bitpack::word::{and_popcount, xor_popcount};
use apnn_bitpack::{BitPlanes, PopcntArm};
use apnn_sim::BmmaOp;

use crate::autotune::MAX_JB;

/// Maximum plane count per operand (codes are 1..=8 bits wide).
pub const MAX_PLANES: usize = 8;

/// Stack accumulator capacity: a full column block at maximal plane
/// counts. Kernels declare `[i32; MAX_TILE]` locals and slice them to the
/// live `jb·pa·pb` prefix.
pub const MAX_TILE: usize = MAX_JB * MAX_PLANES * MAX_PLANES;

/// A bit-plane operand viewed as `planes × rows` of equal-width word rows
/// — the one shape both kernel families feed the microkernel: packed
/// [`BitPlanes`] matrices (weights, activations) and the conv window
/// scratch (a flat `q × plane_words` gather).
#[derive(Debug, Clone, Copy)]
pub struct PlaneView<'a> {
    planes: [&'a [u64]; MAX_PLANES],
    n_planes: usize,
    words_per_row: usize,
}

impl<'a> PlaneView<'a> {
    /// View a packed [`BitPlanes`] operand (each plane's rows are
    /// contiguous at the matrix's padded word stride).
    pub fn from_bitplanes(p: &'a BitPlanes) -> Self {
        let n_planes = p.bits() as usize;
        assert!(n_planes <= MAX_PLANES, "plane counts are 1..=8");
        let words_per_row = p.plane(0).words_per_row();
        let mut planes: [&'a [u64]; MAX_PLANES] = [&[]; MAX_PLANES];
        for (s, slot) in planes.iter_mut().enumerate().take(n_planes) {
            *slot = p.plane(s as u32).words();
        }
        PlaneView {
            planes,
            n_planes,
            words_per_row,
        }
    }

    /// View a flat single-row gather: `n_planes` consecutive
    /// `words_per_row`-word planes (the conv window scratch layout).
    pub fn from_flat(words: &'a [u64], n_planes: usize, words_per_row: usize) -> Self {
        assert!(n_planes <= MAX_PLANES, "plane counts are 1..=8");
        assert!(words.len() >= n_planes * words_per_row);
        let mut planes: [&'a [u64]; MAX_PLANES] = [&[]; MAX_PLANES];
        for (s, slot) in planes.iter_mut().enumerate().take(n_planes) {
            *slot = &words[s * words_per_row..(s + 1) * words_per_row];
        }
        PlaneView {
            planes,
            n_planes,
            words_per_row,
        }
    }

    /// View per-plane owned rows (the allocating conv window gather).
    pub fn from_plane_rows(rows: &'a [Vec<u64>], words_per_row: usize) -> Self {
        assert!(rows.len() <= MAX_PLANES, "plane counts are 1..=8");
        let mut planes: [&'a [u64]; MAX_PLANES] = [&[]; MAX_PLANES];
        for (s, slot) in planes.iter_mut().enumerate().take(rows.len()) {
            *slot = &rows[s];
        }
        PlaneView {
            planes,
            n_planes: rows.len(),
            words_per_row,
        }
    }

    /// Plane count.
    #[inline]
    pub fn n_planes(&self) -> usize {
        self.n_planes
    }

    /// Words per logical row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The `[k0, k0+len)` word chunk of `row` in `plane`.
    #[inline]
    fn chunk(&self, plane: usize, row: usize, k0: usize, len: usize) -> &'a [u64] {
        let base = row * self.words_per_row + k0;
        &self.planes[plane][base..base + len]
    }
}

/// Accumulate the raw plane-pair popcounts of a `jb`-wide column block in
/// one K pass:
///
/// `tile[(j·pa + s)·pb + u] = Σ_k popc(op(A[s][ai][k], B[u][bj0+j][k]))`
///
/// for every A plane `s`, B plane `u` and block column `j`. K is walked in
/// `kb`-word rounds; within a round the A chunks are hoisted once and
/// every `(j, u)` chunk is combined against all of them while hot. The
/// counts are exact, so the caller's correction/shift-add step
/// ([`crate::select::adjust_partial`]) sees the same integers the
/// un-tiled kernels produced.
///
/// `arm` names the merged-popcount implementation the chunks run on
/// ([`PopcntArm`], bound once per plan at compile time); every arm is
/// bit-identical, so it moves throughput only. The [`PopcntArm::Scalar`]
/// arm keeps the historical compile-time dispatch (and its auto-vectorized
/// codegen under `target-cpu=native`); the SIMD arms reach explicit
/// `core::arch` reductions regardless of build flags.
#[allow(clippy::too_many_arguments)]
pub fn popc_tile(
    op: BmmaOp,
    arm: PopcntArm,
    a: &PlaneView<'_>,
    ai: usize,
    b: &PlaneView<'_>,
    bj0: usize,
    jb: usize,
    kb: usize,
    tile: &mut [i32],
) {
    match (op, arm) {
        (BmmaOp::And, PopcntArm::Scalar) => {
            popc_tile_with(a, ai, b, bj0, jb, kb, tile, and_popcount)
        }
        (BmmaOp::Xor, PopcntArm::Scalar) => {
            popc_tile_with(a, ai, b, bj0, jb, kb, tile, xor_popcount)
        }
        (BmmaOp::And, arm) => popc_tile_with(a, ai, b, bj0, jb, kb, tile, |x, y| {
            and_popcount_arm(arm, x, y)
        }),
        (BmmaOp::Xor, arm) => popc_tile_with(a, ai, b, bj0, jb, kb, tile, |x, y| {
            xor_popcount_arm(arm, x, y)
        }),
    }
}

/// [`popc_tile`] monomorphized over the combining popcount, so the op
/// dispatch happens once per call instead of once per word.
#[allow(clippy::too_many_arguments)]
#[inline]
fn popc_tile_with(
    a: &PlaneView<'_>,
    ai: usize,
    b: &PlaneView<'_>,
    bj0: usize,
    jb: usize,
    kb: usize,
    tile: &mut [i32],
    popc: impl Fn(&[u64], &[u64]) -> u32,
) {
    let (pa, pb) = (a.n_planes, b.n_planes);
    let kw = a.words_per_row;
    debug_assert_eq!(kw, b.words_per_row, "operands must share padded K");
    debug_assert_eq!(tile.len(), jb * pa * pb, "accumulator tile mis-sized");
    tile.fill(0);
    let kb = kb.max(1);
    let mut k0 = 0;
    while k0 < kw {
        let len = kb.min(kw - k0);
        // Hoist the A-side chunks: every (j, u) pair of the block reuses
        // them while they are hot.
        let a_chunks: [&[u64]; MAX_PLANES] =
            std::array::from_fn(|s| if s < pa { a.chunk(s, ai, k0, len) } else { &[] });
        for j in 0..jb {
            for u in 0..pb {
                let b_chunk = b.chunk(u, bj0 + j, k0, len);
                let row = &mut tile[(j * pa) * pb..(j * pa + pa) * pb];
                for (s, a_chunk) in a_chunks[..pa].iter().enumerate() {
                    row[s * pb + u] += popc(a_chunk, b_chunk) as i32;
                }
            }
        }
        k0 += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apnn_bitpack::Encoding;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    /// The naive per-pair reference the microkernel must reproduce.
    fn naive_tile(
        op: BmmaOp,
        w: &BitPlanes,
        i: usize,
        x: &BitPlanes,
        j0: usize,
        jb: usize,
    ) -> Vec<i32> {
        let (pa, pb) = (w.bits() as usize, x.bits() as usize);
        let mut out = vec![0i32; jb * pa * pb];
        for j in 0..jb {
            for (s, cell) in out[j * pa * pb..(j + 1) * pa * pb]
                .chunks_mut(pb)
                .enumerate()
            {
                for (u, v) in cell.iter_mut().enumerate() {
                    let a_row = w.plane(s as u32).row_words(i);
                    let b_row = x.plane(u as u32).row_words(j0 + j);
                    *v = a_row
                        .iter()
                        .zip(b_row)
                        .map(|(&aw, &bw)| match op {
                            BmmaOp::And => (aw & bw).count_ones(),
                            BmmaOp::Xor => (aw ^ bw).count_ones(),
                        })
                        .sum::<u32>() as i32;
                }
            }
        }
        out
    }

    #[test]
    fn tile_matches_naive_for_every_block_shape() {
        let mut seed = 5;
        let (m, n, k) = (5, 9, 300);
        for (p, q) in [(1u32, 1u32), (1, 2), (2, 2), (3, 5), (8, 8)] {
            let wc: Vec<u32> = (0..m * k)
                .map(|_| (lcg(&mut seed) as u32) % (1 << p))
                .collect();
            let xc: Vec<u32> = (0..n * k)
                .map(|_| (lcg(&mut seed) as u32) % (1 << q))
                .collect();
            let w = BitPlanes::from_codes(&wc, m, k, p, Encoding::ZeroOne);
            let x = BitPlanes::from_codes(&xc, n, k, q, Encoding::ZeroOne);
            let (wv, xv) = (PlaneView::from_bitplanes(&w), PlaneView::from_bitplanes(&x));
            for op in [BmmaOp::And, BmmaOp::Xor] {
                for arm in PopcntArm::ALL {
                    for jb in [1usize, 2, 3, 8] {
                        for kb in [1usize, 2, 4, 64] {
                            let jb = jb.min(n);
                            let mut tile = [0i32; MAX_TILE];
                            let live = &mut tile[..jb * p as usize * q as usize];
                            popc_tile(op, arm, &wv, 2, &xv, 1, jb, kb, live);
                            assert_eq!(
                                live,
                                &naive_tile(op, &w, 2, &x, 1, jb)[..],
                                "w{p}a{q} {op:?} {arm:?} jb={jb} kb={kb}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn flat_view_matches_bitplanes_view() {
        // A flat single-row gather must behave exactly like a one-row
        // BitPlanes operand.
        let mut seed = 11;
        let (k, q) = (260, 3u32);
        let xc: Vec<u32> = (0..k).map(|_| (lcg(&mut seed) as u32) % (1 << q)).collect();
        let x = BitPlanes::from_codes(&xc, 1, k, q, Encoding::ZeroOne);
        let wpr = x.plane(0).words_per_row();
        let flat: Vec<u64> = (0..q)
            .flat_map(|t| x.plane(t).row_words(0).to_vec())
            .collect();
        let wc: Vec<u32> = (0..2 * k).map(|_| (lcg(&mut seed) as u32) % 4).collect();
        let w = BitPlanes::from_codes(&wc, 2, k, 2, Encoding::ZeroOne);

        let fv = PlaneView::from_flat(&flat, q as usize, wpr);
        let xv = PlaneView::from_bitplanes(&x);
        let wv = PlaneView::from_bitplanes(&w);
        let mut t1 = [0i32; MAX_TILE];
        let mut t2 = [0i32; MAX_TILE];
        let live = 2 * q as usize * 2;
        for arm in PopcntArm::ALL {
            popc_tile(BmmaOp::And, arm, &fv, 0, &wv, 0, 2, 8, &mut t1[..live]);
            popc_tile(BmmaOp::And, arm, &xv, 0, &wv, 0, 2, 8, &mut t2[..live]);
            assert_eq!(t1, t2, "{arm:?}");
        }
    }
}
