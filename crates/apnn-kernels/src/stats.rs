//! Counters for compile-time vs. serve-time work.
//!
//! The compiled-plan execution model (see `apnn-nn`'s `compile` module)
//! promises that expensive per-layer preparation — tile autotuning, weight
//! packing, correction-vector precomputation — happens once at compile time
//! and never in the `infer()` hot loop. These counters make that promise
//! testable: snapshot them after compilation, run inference, and assert
//! they did not move.
//!
//! Two views exist:
//!
//! * the historical **process-wide** totals ([`autotune_calls`],
//!   [`weight_prepares`]) — monotone across every thread, useful for
//!   coarse "compiling moves the counters" sanity checks;
//! * a **per-scope** view ([`scope`] → [`StatsScope`]) backed by
//!   thread-local counters, so concurrent test binaries and `apnn-serve`
//!   worker threads can each assert "no preparation happened *here*"
//!   without serializing on a global lock or reading each other's work.
//!
//! Preparation always happens on the thread that calls `compile()` /
//! `prepare()` (the kernels never defer packing to a pool thread), so a
//! scope opened before a compile on the same thread observes exactly that
//! compile's work and nothing else.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static AUTOTUNE_CALLS: AtomicU64 = AtomicU64::new(0);
static WEIGHT_PREPARES: AtomicU64 = AtomicU64::new(0);
static ROW_SUM_BUILDS: AtomicU64 = AtomicU64::new(0);
static WORKSPACE_CREATES: AtomicU64 = AtomicU64::new(0);
static MICRO_TUNES: AtomicU64 = AtomicU64::new(0);
static MICRO_BENCHES: AtomicU64 = AtomicU64::new(0);
static MICRO_MEMO_RESIDENT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_AUTOTUNE: Cell<u64> = const { Cell::new(0) };
    static TL_PREPARES: Cell<u64> = const { Cell::new(0) };
    static TL_ROW_SUMS: Cell<u64> = const { Cell::new(0) };
    static TL_MICRO_TUNES: Cell<u64> = const { Cell::new(0) };
    static TL_MICRO_BENCHES: Cell<u64> = const { Cell::new(0) };
}

/// Total [`crate::autotune::autotune`] invocations in this process.
pub fn autotune_calls() -> u64 {
    AUTOTUNE_CALLS.load(Ordering::Relaxed)
}

/// Total prepared-kernel constructions (weight packing + correction
/// precomputation) in this process.
pub fn weight_prepares() -> u64 {
    WEIGHT_PREPARES.load(Ordering::Relaxed)
}

/// Total weight-side correction-vector (`W·J` row sum, §3.2) builds in
/// this process. Prepared kernels build these once at prepare time; the
/// ad-hoc entry points rebuild them per call — the counter is how tests
/// prove the hoist (exactly one build per plan, zero during inference).
pub fn row_sum_builds() -> u64 {
    ROW_SUM_BUILDS.load(Ordering::Relaxed)
}

/// Total CPU-microkernel tile selections
/// ([`crate::autotune::autotune_micro`]) in this process. Compiled plans
/// pick one `(JB, KB)` tile per layer at compile time; the ad-hoc kernel
/// entry points re-tune per call — the counter is how tests prove the
/// hoist, exactly like [`row_sum_builds`].
pub fn micro_tunes() -> u64 {
    MICRO_TUNES.load(Ordering::Relaxed)
}

/// Total microkernel tile **measurements** in this process: timed
/// `(JB, KB)` grid sweeps run by [`crate::autotune::select_micro`] on a
/// memo miss in measured mode. Every measurement is also a tile selection
/// (so [`micro_tunes`] moves with it), but a memo hit or a pinned
/// heuristic answer moves neither — the pair of counters is how tests
/// prove "measured once per distinct shape, free afterwards".
pub fn micro_benches() -> u64 {
    MICRO_BENCHES.load(Ordering::Relaxed)
}

/// Entries currently resident across the process-global microkernel memo
/// maps (tile selections + single-candidate cost probes). A gauge, not a
/// counter: both maps are bounded at
/// [`crate::autotune::MICRO_MEMO_CAP`] entries each with FIFO eviction,
/// so this never exceeds `2 * MICRO_MEMO_CAP`.
pub fn micro_memo_resident() -> u64 {
    MICRO_MEMO_RESIDENT.load(Ordering::Relaxed)
}

pub(crate) fn set_micro_memo_resident(n: u64) {
    MICRO_MEMO_RESIDENT.store(n, Ordering::Relaxed);
}

/// Total execution-workspace constructions in this process (see
/// `apnn_nn::compile::ExecWorkspace`). A long-running server should show
/// one per (worker thread, plan) pair, regardless of how many batches it
/// executes — the counter is how serve tests prove per-worker reuse.
pub fn workspace_creates() -> u64 {
    WORKSPACE_CREATES.load(Ordering::Relaxed)
}

/// Open a counting scope on the **current thread**. Deltas read from the
/// returned [`StatsScope`] cover only work performed by this thread after
/// this call — other threads (parallel tests, serve workers) cannot
/// perturb them.
pub fn scope() -> StatsScope {
    StatsScope {
        autotune0: TL_AUTOTUNE.get(),
        prepares0: TL_PREPARES.get(),
        row_sums0: TL_ROW_SUMS.get(),
        micro0: TL_MICRO_TUNES.get(),
        bench0: TL_MICRO_BENCHES.get(),
        _thread_bound: std::marker::PhantomData,
    }
}

/// A snapshot handle from [`scope`]: reports how much preparation work the
/// current thread performed since the scope was opened. Plain reads — a
/// scope can be consulted repeatedly and scopes may nest freely.
///
/// Deliberately `!Send`/`!Sync` (raw-pointer marker): the baselines are
/// thread-local, so reading a scope from another thread would compare
/// against the wrong counters. The contract is enforced at compile time.
#[derive(Debug, Clone, Copy)]
pub struct StatsScope {
    autotune0: u64,
    prepares0: u64,
    row_sums0: u64,
    micro0: u64,
    bench0: u64,
    _thread_bound: std::marker::PhantomData<*const ()>,
}

impl StatsScope {
    /// Autotune invocations on this thread since the scope opened.
    pub fn autotune_calls(&self) -> u64 {
        TL_AUTOTUNE.get() - self.autotune0
    }

    /// Prepared-kernel constructions on this thread since the scope opened.
    pub fn weight_prepares(&self) -> u64 {
        TL_PREPARES.get() - self.prepares0
    }

    /// Weight-side correction-vector builds on this thread since the scope
    /// opened.
    pub fn row_sum_builds(&self) -> u64 {
        TL_ROW_SUMS.get() - self.row_sums0
    }

    /// Microkernel tile selections on this thread since the scope opened.
    pub fn micro_tunes(&self) -> u64 {
        TL_MICRO_TUNES.get() - self.micro0
    }

    /// Microkernel tile measurements (timed grid sweeps) on this thread
    /// since the scope opened.
    pub fn micro_benches(&self) -> u64 {
        TL_MICRO_BENCHES.get() - self.bench0
    }
}

pub(crate) fn count_autotune() {
    AUTOTUNE_CALLS.fetch_add(1, Ordering::Relaxed);
    TL_AUTOTUNE.set(TL_AUTOTUNE.get() + 1);
}

pub(crate) fn count_weight_prepare() {
    WEIGHT_PREPARES.fetch_add(1, Ordering::Relaxed);
    TL_PREPARES.set(TL_PREPARES.get() + 1);
}

pub(crate) fn count_row_sums_build() {
    ROW_SUM_BUILDS.fetch_add(1, Ordering::Relaxed);
    TL_ROW_SUMS.set(TL_ROW_SUMS.get() + 1);
}

pub(crate) fn count_micro_tune() {
    MICRO_TUNES.fetch_add(1, Ordering::Relaxed);
    TL_MICRO_TUNES.set(TL_MICRO_TUNES.get() + 1);
}

pub(crate) fn count_micro_bench() {
    MICRO_BENCHES.fetch_add(1, Ordering::Relaxed);
    TL_MICRO_BENCHES.set(TL_MICRO_BENCHES.get() + 1);
}

/// Record one execution-workspace construction. Called by the workspace
/// constructors in higher layers (`apnn-nn`); not meant for user code.
#[doc(hidden)]
pub fn record_workspace_create() {
    WORKSPACE_CREATES.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Heap-allocation accounting.
// ---------------------------------------------------------------------------

static HEAP_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A counting [`std::alloc::GlobalAlloc`] wrapper around the system
/// allocator. Register it in a test binary —
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: apnn_kernels::stats::CountingAllocator = CountingAllocator::new();
/// ```
///
/// — and every heap allocation (and growing reallocation) in the process
/// increments a counter readable through [`heap_allocations`] /
/// [`alloc_scope`]. This is the instrument behind the zero-allocation
/// steady-state contract: warm a workspace, open a scope, run inference,
/// assert the delta is zero. Deallocations are not counted (freeing is
/// allowed; *asking the allocator for memory* on the hot path is not).
///
/// The counter is deliberately **process-wide**, not thread-local: the
/// contract covers helper threads too, so an allocation sneaking onto a
/// pool thread still fails the assertion.
pub struct CountingAllocator;

impl CountingAllocator {
    /// A new counting allocator (const, usable in `static` position).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation verbatim to `std::alloc::System`; the
// only addition is a relaxed counter increment, which never unwinds.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        HEAP_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        HEAP_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        HEAP_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }
}

/// Total heap allocations observed so far. Always 0 unless the binary
/// registered [`CountingAllocator`] as its `#[global_allocator]`.
pub fn heap_allocations() -> u64 {
    HEAP_ALLOCATIONS.load(Ordering::Relaxed)
}

/// Open a process-wide allocation-counting scope (see
/// [`CountingAllocator`] for the registration requirement).
pub fn alloc_scope() -> AllocScope {
    AllocScope {
        start: heap_allocations(),
    }
}

/// Snapshot handle from [`alloc_scope`]: how many heap allocations the
/// whole process performed since the scope opened.
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start: u64,
}

impl AllocScope {
    /// Allocations since the scope opened.
    pub fn allocations(&self) -> u64 {
        heap_allocations() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let a0 = autotune_calls();
        count_autotune();
        assert!(autotune_calls() > a0);
        let w0 = weight_prepares();
        count_weight_prepare();
        assert!(weight_prepares() > w0);
        let r0 = row_sum_builds();
        count_row_sums_build();
        assert!(row_sum_builds() > r0);
        let ws0 = workspace_creates();
        record_workspace_create();
        assert!(workspace_creates() > ws0);
        let m0 = micro_tunes();
        count_micro_tune();
        assert!(micro_tunes() > m0);
        let b0 = micro_benches();
        count_micro_bench();
        assert!(micro_benches() > b0);
    }

    #[test]
    fn row_sum_scope_tracks_thread_deltas() {
        let s = scope();
        assert_eq!(s.row_sum_builds(), 0);
        count_row_sums_build();
        assert_eq!(s.row_sum_builds(), 1);
    }

    #[test]
    fn alloc_scope_is_inert_without_the_global_allocator() {
        // This test binary uses the default allocator, so the counter never
        // moves — the scope API itself must still be well-behaved.
        let s = alloc_scope();
        let _v: Vec<u64> = Vec::with_capacity(1024);
        assert_eq!(s.allocations(), 0);
    }

    #[test]
    fn scopes_see_own_thread_deltas_only() {
        let s = scope();
        count_autotune();
        count_weight_prepare();
        assert_eq!(s.autotune_calls(), 1);
        assert_eq!(s.weight_prepares(), 1);

        // Work on another thread is invisible to this scope.
        std::thread::spawn(|| {
            count_autotune();
            count_weight_prepare();
        })
        .join()
        .unwrap();
        assert_eq!(s.autotune_calls(), 1);
        assert_eq!(s.weight_prepares(), 1);

        // Nested scope starts from zero.
        let inner = scope();
        assert_eq!(inner.autotune_calls(), 0);
        count_autotune();
        assert_eq!(inner.autotune_calls(), 1);
        assert_eq!(s.autotune_calls(), 2);
    }
}
