//! Counters for compile-time vs. serve-time work.
//!
//! The compiled-plan execution model (see `apnn-nn`'s `compile` module)
//! promises that expensive per-layer preparation — tile autotuning, weight
//! packing, correction-vector precomputation — happens once at compile time
//! and never in the `infer()` hot loop. These counters make that promise
//! testable: snapshot them after compilation, run inference, and assert
//! they did not move.
//!
//! Two views exist:
//!
//! * the historical **process-wide** totals ([`autotune_calls`],
//!   [`weight_prepares`]) — monotone across every thread, useful for
//!   coarse "compiling moves the counters" sanity checks;
//! * a **per-scope** view ([`scope`] → [`StatsScope`]) backed by
//!   thread-local counters, so concurrent test binaries and `apnn-serve`
//!   worker threads can each assert "no preparation happened *here*"
//!   without serializing on a global lock or reading each other's work.
//!
//! Preparation always happens on the thread that calls `compile()` /
//! `prepare()` (the kernels never defer packing to a pool thread), so a
//! scope opened before a compile on the same thread observes exactly that
//! compile's work and nothing else.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static AUTOTUNE_CALLS: AtomicU64 = AtomicU64::new(0);
static WEIGHT_PREPARES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_AUTOTUNE: Cell<u64> = const { Cell::new(0) };
    static TL_PREPARES: Cell<u64> = const { Cell::new(0) };
}

/// Total [`crate::autotune::autotune`] invocations in this process.
pub fn autotune_calls() -> u64 {
    AUTOTUNE_CALLS.load(Ordering::Relaxed)
}

/// Total prepared-kernel constructions (weight packing + correction
/// precomputation) in this process.
pub fn weight_prepares() -> u64 {
    WEIGHT_PREPARES.load(Ordering::Relaxed)
}

/// Open a counting scope on the **current thread**. Deltas read from the
/// returned [`StatsScope`] cover only work performed by this thread after
/// this call — other threads (parallel tests, serve workers) cannot
/// perturb them.
pub fn scope() -> StatsScope {
    StatsScope {
        autotune0: TL_AUTOTUNE.get(),
        prepares0: TL_PREPARES.get(),
        _thread_bound: std::marker::PhantomData,
    }
}

/// A snapshot handle from [`scope`]: reports how much preparation work the
/// current thread performed since the scope was opened. Plain reads — a
/// scope can be consulted repeatedly and scopes may nest freely.
///
/// Deliberately `!Send`/`!Sync` (raw-pointer marker): the baselines are
/// thread-local, so reading a scope from another thread would compare
/// against the wrong counters. The contract is enforced at compile time.
#[derive(Debug, Clone, Copy)]
pub struct StatsScope {
    autotune0: u64,
    prepares0: u64,
    _thread_bound: std::marker::PhantomData<*const ()>,
}

impl StatsScope {
    /// Autotune invocations on this thread since the scope opened.
    pub fn autotune_calls(&self) -> u64 {
        TL_AUTOTUNE.get() - self.autotune0
    }

    /// Prepared-kernel constructions on this thread since the scope opened.
    pub fn weight_prepares(&self) -> u64 {
        TL_PREPARES.get() - self.prepares0
    }
}

pub(crate) fn count_autotune() {
    AUTOTUNE_CALLS.fetch_add(1, Ordering::Relaxed);
    TL_AUTOTUNE.set(TL_AUTOTUNE.get() + 1);
}

pub(crate) fn count_weight_prepare() {
    WEIGHT_PREPARES.fetch_add(1, Ordering::Relaxed);
    TL_PREPARES.set(TL_PREPARES.get() + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let a0 = autotune_calls();
        count_autotune();
        assert!(autotune_calls() > a0);
        let w0 = weight_prepares();
        count_weight_prepare();
        assert!(weight_prepares() > w0);
    }

    #[test]
    fn scopes_see_own_thread_deltas_only() {
        let s = scope();
        count_autotune();
        count_weight_prepare();
        assert_eq!(s.autotune_calls(), 1);
        assert_eq!(s.weight_prepares(), 1);

        // Work on another thread is invisible to this scope.
        std::thread::spawn(|| {
            count_autotune();
            count_weight_prepare();
        })
        .join()
        .unwrap();
        assert_eq!(s.autotune_calls(), 1);
        assert_eq!(s.weight_prepares(), 1);

        // Nested scope starts from zero.
        let inner = scope();
        assert_eq!(inner.autotune_calls(), 0);
        count_autotune();
        assert_eq!(inner.autotune_calls(), 1);
        assert_eq!(s.autotune_calls(), 2);
    }
}
