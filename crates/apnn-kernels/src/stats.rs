//! Process-wide counters for compile-time vs. serve-time work.
//!
//! The compiled-plan execution model (see `apnn-nn`'s `compile` module)
//! promises that expensive per-layer preparation — tile autotuning, weight
//! packing, correction-vector precomputation — happens once at compile time
//! and never in the `infer()` hot loop. These counters make that promise
//! testable: snapshot them after compilation, run inference, and assert
//! they did not move.

use std::sync::atomic::{AtomicU64, Ordering};

static AUTOTUNE_CALLS: AtomicU64 = AtomicU64::new(0);
static WEIGHT_PREPARES: AtomicU64 = AtomicU64::new(0);

/// Total [`crate::autotune::autotune`] invocations in this process.
pub fn autotune_calls() -> u64 {
    AUTOTUNE_CALLS.load(Ordering::Relaxed)
}

/// Total prepared-kernel constructions (weight packing + correction
/// precomputation) in this process.
pub fn weight_prepares() -> u64 {
    WEIGHT_PREPARES.load(Ordering::Relaxed)
}

pub(crate) fn count_autotune() {
    AUTOTUNE_CALLS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_weight_prepare() {
    WEIGHT_PREPARES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let a0 = autotune_calls();
        count_autotune();
        assert!(autotune_calls() > a0);
        let w0 = weight_prepares();
        count_weight_prepare();
        assert!(weight_prepares() > w0);
    }
}
