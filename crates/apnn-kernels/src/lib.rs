#![warn(missing_docs)]

//! # apnn-kernels
//!
//! The core contribution of APNN-TC (SC'21), reimplemented in Rust on top of
//! the `apnn-sim` tensor-core substrate:
//!
//! * [`select`] — data-adaptive operator selection (§3.2): picks `XOR` or
//!   `AND` and the linear-transform correction for the three input-encoding
//!   cases.
//! * [`emulate`] — the AP-Bit operation template (§3.1): arbitrary `p×q`-bit
//!   products from `p·q` one-bit `bmma` calls plus shift-add combination.
//! * [`apmm`] — arbitrary-precision matrix multiplication (§4.1) with
//!   batch-based double caching and memory-efficient bit combination;
//!   functional multi-threaded CPU execution plus simulated-GPU latency.
//! * [`apconv`] — arbitrary-precision convolution (§4.2) with channel-major
//!   NPHWC data organization and input-aware padding.
//! * [`mod@autotune`] — the TLP/CI performance model and tile-size search
//!   heuristic (§4.3), plus the CPU microkernel's `(JB, KB)` tile selection.
//! * [`micro`] — the register-blocked multi-plane popcount microkernel: the
//!   one inner loop every functional kernel path runs on (the CPU analogue
//!   of the paper's AP-BMMA fragment reuse).
//! * [`fusion`] — fusable epilogues (BN / ReLU / pool / quantize, §5.2).
//! * [`baselines`] — cutlass/cublas-like fixed-tile kernels at int1, int4,
//!   int8, fp16 and fp32, used by every speedup figure in the paper.
//! * [`mod@reference`] — naive i32 oracles used throughout the test suite.

pub mod apconv;
pub mod apmm;
pub mod autotune;
pub mod baselines;
pub mod emulate;
pub mod fusion;
pub mod micro;
pub mod reference;
pub mod select;
pub mod stats;

pub use apconv::{ApConv, ConvDesc, PreparedConv};
pub use apmm::{Apmm, ApmmDesc, PreparedApmm, TileConfig};
pub use autotune::{
    autotune, autotune_micro, compute_intensity, stage_cost, thread_level_parallelism, MicroTile,
    StageShape, MICRO_MEMO_CAP,
};
pub use emulate::ap_bit_mm;
pub use fusion::{Epilogue, EpilogueOp};
pub use select::{plan, EmulationCase, EmulationPlan};
