//! Mapping APMM onto the simulated GPU: counters + latency.
//!
//! Two paths produce *identical* counters for the same tiling:
//!
//! * [`estimate`] — closed-form, O(grid) time, used for latency projections
//!   at any problem size.
//! * [`run_functional`] — executes the tiled algorithm block by block with
//!   real `bmma` fragment arithmetic, recording events as it goes. Tests
//!   assert its counters equal [`estimate`]'s and its output equals the CPU
//!   backend, which pins the cost model to the actual algorithm.
//!
//! The kernel structure follows §4.1: every K-step a block stages a
//! `bm×bk` weight tile and `bn×bk` feature tile of the *batched* operands in
//! shared memory (cooperative load), warps fetch fragments (W tiles are read
//! by the 2 warp columns, X tiles by the 4 warp rows), and `bmma` results
//! accumulate in persistent register fragments (double caching). After the
//! K loop the `p·q` plane partials — co-resident thanks to the interleaved
//! batch mapping — are reduced with shift-adds and the epilogue runs before
//! a single store per output element.

use apnn_bitpack::word::WORD_BITS;
use apnn_bitpack::{BitPlanes, Encoding};
use apnn_sim::bmma::WORDS_PER_ROW;
use apnn_sim::{
    bmma_8x8x128, launch, Coalescing, Counters, GpuSpec, KernelConfig, KernelReport, Precision,
    BMMA_K, BMMA_M, BMMA_N,
};

use super::{ApmmDesc, FusedOutput, TileConfig};
use crate::fusion::Epilogue;
use crate::select::{adjust_partial, EmulationCase};

/// Fraction of peak tensor-core throughput the APMM kernel reaches on a
/// fully occupied SM. Fig. 12 of the paper shows APMM-w1a1 beating
/// cutlass-gemm-int1 by ≈1.35×; with cutlass-int1 calibrated near 0.60
/// (below), this constant reproduces that gap.
pub const APMM_TC_EFFICIENCY: f64 = 0.82;

/// Integer-ALU ops charged per element per plane for in-kernel bit
/// decomposition (shift + mask + ballot-amortized pack).
pub const DECOMPOSE_OPS_PER_ELEM: u64 = 3;

/// Launch configuration shared by the estimate and functional paths.
pub fn kernel_config(desc: &ApmmDesc, tile: &TileConfig) -> KernelConfig {
    KernelConfig {
        grid_blocks: tile.grid_blocks(desc.batched_m(), desc.batched_n()),
        warps_per_block: TileConfig::WARPS,
        shmem_per_block: tile.shmem_bytes(),
        regs_per_thread: 64,
        precision: Precision::Int1,
        efficiency: APMM_TC_EFFICIENCY,
    }
}

/// Per-(block,K-step) tile-loading traffic in bytes:
/// `(w_tile, x_tile, shmem_write, shmem_read)`.
fn tile_traffic(tile: &TileConfig) -> (u64, u64, u64, u64) {
    let w_bits = (tile.bm * tile.bk) as u64;
    let x_bits = (tile.bn * tile.bk) as u64;
    let w_bytes = w_bits / 8;
    let x_bytes = x_bits / 8;
    let sh_write = w_bytes + x_bytes;
    // W fragments are fetched by the 2 warp columns, X fragments by the 4
    // warp rows (4×2 warp grid, §4.3).
    let sh_read = (2 * w_bits + 4 * x_bits) / 8;
    (w_bytes, x_bytes, sh_write, sh_read)
}

/// Outputs finalized by block row `bi` (resp. column `bj`): the count of
/// actual indices whose *last* plane partial lands in this tile under the
/// interleaved batch mapping.
fn covered(actual: usize, planes: usize, tile: usize, block: usize) -> usize {
    let lo = block * tile;
    let hi = ((block + 1) * tile).min(planes * actual);
    if hi <= lo {
        return 0;
    }
    hi / planes - lo / planes
}

/// Closed-form counters + latency for the APMM kernel.
///
/// `epi = None` stores raw i32; `Some(epilogue)` fuses the element-wise
/// chain, and if it ends in quantization the stores shrink to `q`-bit packed
/// codes (§5.1 minimal-traffic dataflow).
pub fn estimate(
    desc: &ApmmDesc,
    tile: &TileConfig,
    spec: &GpuSpec,
    epi: Option<&Epilogue>,
) -> KernelReport {
    estimate_with_efficiency(desc, tile, spec, epi, APMM_TC_EFFICIENCY)
}

/// [`estimate`] with an explicit kernel-efficiency factor (prior-work
/// binary-kernel modeling).
pub fn estimate_with_efficiency(
    desc: &ApmmDesc,
    tile: &TileConfig,
    spec: &GpuSpec,
    epi: Option<&Epilogue>,
    efficiency: f64,
) -> KernelReport {
    let mut cfg = kernel_config(desc, tile);
    cfg.efficiency = efficiency;
    let grid_m = desc.batched_m().div_ceil(tile.bm);
    let grid_n = desc.batched_n().div_ceil(tile.bn);
    let grid = (grid_m * grid_n) as u64;
    let k_steps = (desc.k_padded() / tile.bk) as u64;

    let mut c = Counters::default();
    let (wb, xb, sw, sr) = tile_traffic(tile);
    c.global_load_bytes = grid * k_steps * (wb + xb);
    // DRAM sees each operand tile once (first-touch by the first block
    // row/column); the remaining (grid-1)/grid of tile loads hit L2.
    c.global_sectors =
        (grid_m as u64 * k_steps * wb).div_ceil(32) + (grid_n as u64 * k_steps * xb).div_ceil(32);
    c.shmem_bytes = grid * k_steps * (sw + sr);
    c.syncs = grid * k_steps;

    let frags_per_step = ((tile.bm / BMMA_M) * (tile.bn / BMMA_N) * (tile.bk / BMMA_K)) as u64;
    c.bmma_ops = grid * k_steps * frags_per_step;
    c.tc_macs = c.bmma_ops * apnn_sim::bmma::MACS_PER_BMMA;

    // Bit combination: one shift-add per batched partial, staged through
    // shared memory (write + read of each 4-byte partial).
    c.cuda_int_ops = grid * (tile.bm * tile.bn) as u64;
    c.shmem_bytes += grid * (tile.bm * tile.bn * 8) as u64;

    // Per-output epilogue + stores.
    let outputs = (desc.m * desc.n) as u64;
    let (epi_int, epi_fp) = epi.map(|e| e.cost_per_element()).unwrap_or((0, 0));
    let out_bits = epi.and_then(|e| e.output_bits());
    let pack_int = out_bits.map(|b| b as u64).unwrap_or(0);
    c.cuda_int_ops += outputs * (epi_int + pack_int);
    c.cuda_flops += outputs * epi_fp;

    // Stores are accounted per block with exactly the formulas the
    // functional path uses, so the two paths' counters stay bit-identical.
    let row_counts: Vec<usize> = (0..grid_m)
        .map(|bi| covered(desc.m, desc.w_bits as usize, tile.bm, bi))
        .collect();
    let col_counts: Vec<usize> = (0..grid_n)
        .map(|bj| covered(desc.n, desc.x_bits as usize, tile.bn, bj))
        .collect();
    for &cr in &row_counts {
        for &cc in &col_counts {
            let n_out = (cr * cc) as u64;
            let bytes = match out_bits {
                None => n_out * 4,
                Some(bits) => (n_out * bits as u64).div_ceil(8),
            };
            c.global_store_bytes += bytes;
            c.global_sectors += bytes.div_ceil(32);
        }
    }

    launch::finish(spec, &cfg, c)
}

/// Execute the tiled kernel functionally through the simulator.
///
/// Requires `p | bm` and `q | bn` (the interleaved batch mapping then makes
/// every block plane-complete, enabling the fully fused bit combination).
/// Returns the output and the kernel report whose counters are, by
/// construction, identical to [`estimate`]'s.
#[allow(clippy::needless_range_loop)] // s/t indexing mirrors the paper's Σ_{s,t}
pub fn run_functional(
    desc: &ApmmDesc,
    tile: &TileConfig,
    spec: &GpuSpec,
    w: &BitPlanes,
    x: &BitPlanes,
    epi: Option<&Epilogue>,
) -> (FusedOutput, KernelReport) {
    desc.check_operands(w, x);
    let p = desc.w_bits as usize;
    let q = desc.x_bits as usize;
    assert_eq!(tile.bm % p, 0, "p must divide bm for the fused combination");
    assert_eq!(tile.bn % q, 0, "q must divide bn for the fused combination");

    let cfg = kernel_config(desc, tile);
    let grid_n = desc.batched_n().div_ceil(tile.bn);
    let k_steps = desc.k_padded() / tile.bk;
    let words_per_step = tile.bk / WORD_BITS;
    let eplan = desc.plan();
    let k_valid = desc.k as i32;

    // Correction vectors.
    let needs_col = eplan.case == EmulationCase::AndWeightTransformed;
    let needs_row = eplan.case == EmulationCase::AndActivationTransformed;
    let x_col_sums: Vec<Vec<i32>> = if needs_col {
        (0..desc.x_bits).map(|t| x.plane(t).row_sums()).collect()
    } else {
        Vec::new()
    };
    let w_row_sums: Vec<Vec<i32>> = if needs_row {
        (0..desc.w_bits).map(|s| w.plane(s).row_sums()).collect()
    } else {
        Vec::new()
    };

    let out_bits = epi.and_then(|e| e.output_bits());
    let (epi_int, epi_fp) = epi.map(|e| e.cost_per_element()).unwrap_or((0, 0));
    let pack_int = out_bits.map(|b| b as u64).unwrap_or(0);

    let mut y_i32 = vec![0i32; desc.m * desc.n];
    let mut codes_t = vec![0u32; desc.n * desc.m]; // transposed packed codes

    let (wb, xb, sw, sr) = tile_traffic(tile);
    let frag_cols = tile.bn / BMMA_N;
    let frags_per_block = (tile.bm / BMMA_M) * frag_cols;

    let report = launch(spec, &cfg, |block, ctx| {
        let bi = block / grid_n;
        let bj = block % grid_n;
        let row0 = bi * tile.bm; // batched
        let col0 = bj * tile.bn; // batched

        // Persistent accumulator fragments (register double caching §4.1(a)).
        let mut c_frags = vec![[0i32; BMMA_M * BMMA_N]; frags_per_block];
        let mut a_frag = [0u64; BMMA_M * WORDS_PER_ROW];
        let mut b_frag = [0u64; BMMA_N * WORDS_PER_ROW];

        for ks in 0..k_steps {
            // First-touch loads stream from DRAM; later block rows/columns
            // re-load the same operand tiles out of L2.
            if bj == 0 {
                ctx.global_load(wb, Coalescing::Coalesced);
            } else {
                ctx.global_load_cached(wb);
            }
            if bi == 0 {
                ctx.global_load(xb, Coalescing::Coalesced);
            } else {
                ctx.global_load_cached(xb);
            }
            ctx.shmem(sw + sr);
            ctx.sync();
            let word_off = ks * words_per_step;
            for fi in 0..tile.bm / BMMA_M {
                for fj in 0..frag_cols {
                    // Gather the A fragment from the interleaved batched rows.
                    for ri in 0..BMMA_M {
                        let r = row0 + fi * BMMA_M + ri;
                        let dst = &mut a_frag[ri * WORDS_PER_ROW..(ri + 1) * WORDS_PER_ROW];
                        if r < desc.batched_m() {
                            let (i, s) = (r / p, r % p);
                            dst.copy_from_slice(w.plane(s as u32).row_word_slice(
                                i,
                                word_off,
                                WORDS_PER_ROW,
                            ));
                        } else {
                            dst.fill(0);
                        }
                    }
                    for cj in 0..BMMA_N {
                        let cc = col0 + fj * BMMA_N + cj;
                        let dst = &mut b_frag[cj * WORDS_PER_ROW..(cj + 1) * WORDS_PER_ROW];
                        if cc < desc.batched_n() {
                            let (j, t) = (cc / q, cc % q);
                            dst.copy_from_slice(x.plane(t as u32).row_word_slice(
                                j,
                                word_off,
                                WORDS_PER_ROW,
                            ));
                        } else {
                            dst.fill(0);
                        }
                    }
                    bmma_8x8x128(
                        &a_frag,
                        &b_frag,
                        &mut c_frags[fi * frag_cols + fj],
                        eplan.op,
                    );
                }
            }
            ctx.bmma((frags_per_block * (tile.bk / BMMA_K)) as u64);
        }

        // Bit combination (in-shmem reduce) + epilogue + store.
        ctx.cuda_int_ops((tile.bm * tile.bn) as u64);
        ctx.shmem((tile.bm * tile.bn * 8) as u64);

        let oi_lo = row0 / p;
        let oi_hi = ((row0 + tile.bm).min(desc.batched_m())) / p;
        let oj_lo = col0 / q;
        let oj_hi = ((col0 + tile.bn).min(desc.batched_n())) / q;
        let n_out = ((oi_hi - oi_lo) * (oj_hi - oj_lo)) as u64;

        for oi in oi_lo..oi_hi {
            for oj in oj_lo..oj_hi {
                let mut acc = 0i32;
                for s in 0..p {
                    for t in 0..q {
                        let r = oi * p + s - row0;
                        let cc = oj * q + t - col0;
                        let frag = &c_frags[(r / BMMA_M) * frag_cols + cc / BMMA_N];
                        let popc = frag[(r % BMMA_M) * BMMA_N + cc % BMMA_N];
                        let adj = adjust_partial(
                            eplan.case,
                            popc,
                            k_valid,
                            if needs_row { w_row_sums[s][oi] } else { 0 },
                            if needs_col { x_col_sums[t][oj] } else { 0 },
                        );
                        acc += adj << (s + t);
                    }
                }
                match (epi, out_bits) {
                    (Some(e), Some(_)) => codes_t[oj * desc.m + oi] = e.apply_to_code(acc, oi),
                    (Some(e), None) => y_i32[oi * desc.n + oj] = e.apply(acc, oi) as i32,
                    (None, _) => y_i32[oi * desc.n + oj] = acc,
                }
            }
        }
        ctx.cuda_int_ops(n_out * (epi_int + pack_int));
        ctx.cuda_flops(n_out * epi_fp);
        let store = match out_bits {
            None => n_out * 4,
            Some(bits) => (n_out * bits as u64).div_ceil(8),
        };
        ctx.global_store(store, Coalescing::Coalesced);
    });

    let out = match out_bits {
        Some(bits) => FusedOutput::Packed(BitPlanes::from_codes(
            &codes_t,
            desc.n,
            desc.m,
            bits,
            Encoding::ZeroOne,
        )),
        None => FusedOutput::Int32(y_i32),
    };
    (out, report)
}

/// Itemized emulation overheads for Fig. 11: tensor-core compute vs the
/// bit-combination and bit-decomposition epilogues.
#[derive(Debug, Clone, Copy)]
pub struct EmulationOverheads {
    /// Tensor-core pipeline time (s).
    pub tc_s: f64,
    /// Added time from the bit-combination shift-adds (s).
    pub combine_s: f64,
    /// Added time from activation bit decomposition (s).
    pub decompose_s: f64,
}

impl EmulationOverheads {
    /// Combination overhead relative to TC compute, in percent.
    pub fn combine_pct(&self) -> f64 {
        100.0 * self.combine_s / self.tc_s
    }

    /// Decomposition overhead relative to TC compute, in percent.
    pub fn decompose_pct(&self) -> f64 {
        100.0 * self.decompose_s / self.tc_s
    }
}

/// Compute the Fig. 11 overhead components for an APMM problem.
pub fn overheads(desc: &ApmmDesc, tile: &TileConfig, spec: &GpuSpec) -> EmulationOverheads {
    let cfg = kernel_config(desc, tile);
    let base = estimate(desc, tile, spec, None);

    let grid = tile.grid_blocks(desc.batched_m(), desc.batched_n()) as u64;
    let combine_ops = grid * (tile.bm * tile.bn) as u64;
    let decompose_ops = DECOMPOSE_OPS_PER_ELEM * desc.x_bits as u64 * (desc.n * desc.k) as u64;

    let price_cuda = |ops: u64| {
        let c = Counters {
            cuda_int_ops: ops,
            ..Default::default()
        };
        launch::finish(spec, &cfg, c).cost.cuda_s
    };

    EmulationOverheads {
        tc_s: base.cost.tensor_s,
        combine_s: price_cuda(combine_ops),
        decompose_s: price_cuda(decompose_ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apmm::cpu::apmm_cpu;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn rand_codes(len: usize, bits: u32, seed: &mut u64) -> Vec<u32> {
        (0..len).map(|_| (lcg(seed) as u32) % (1 << bits)).collect()
    }

    #[test]
    fn functional_matches_cpu_and_estimate_counters() {
        let mut seed = 3;
        // p=2 divides bm=16; q=2 divides bn=32.
        let desc = ApmmDesc::unsigned(24, 40, 200, 2, 2);
        let tile = TileConfig::new(16, 32);
        let spec = GpuSpec::rtx3090();
        let w = BitPlanes::from_codes(
            &rand_codes(desc.m * desc.k, 2, &mut seed),
            desc.m,
            desc.k,
            2,
            Encoding::ZeroOne,
        );
        let x = BitPlanes::from_codes(
            &rand_codes(desc.n * desc.k, 2, &mut seed),
            desc.n,
            desc.k,
            2,
            Encoding::ZeroOne,
        );
        let (out, report) = run_functional(&desc, &tile, &spec, &w, &x, None);
        let FusedOutput::Int32(y) = out else {
            panic!("expected i32 output")
        };
        assert_eq!(y, apmm_cpu(&desc, &w, &x));
        let est = estimate(&desc, &tile, &spec, None);
        assert_eq!(report.counters, est.counters);
        assert_eq!(report.cost.total_s, est.cost.total_s);
    }

    #[test]
    fn functional_fused_packed_matches_cpu_path() {
        let mut seed = 5;
        let desc = ApmmDesc::w1aq(16, 32, 128, 2, Encoding::ZeroOne);
        let tile = TileConfig::new(16, 32);
        let spec = GpuSpec::rtx3090();
        let wv: Vec<i32> = (0..desc.m * desc.k)
            .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
            .collect();
        let w = BitPlanes::from_signed_binary(&wv, desc.m, desc.k);
        let x = BitPlanes::from_codes(
            &rand_codes(desc.n * desc.k, 2, &mut seed),
            desc.n,
            desc.k,
            2,
            Encoding::ZeroOne,
        );
        let epi = Epilogue::quantize(4.0, 0.0, 2);
        let (out, report) = run_functional(&desc, &tile, &spec, &w, &x, Some(&epi));
        let FusedOutput::Packed(packed) = out else {
            panic!("expected packed output")
        };
        // CPU path: full product then quantize+pack.
        let y = apmm_cpu(&desc, &w, &x);
        let expected = crate::apmm::combine::quantize_pack_transposed(&y, desc.m, desc.n, &epi, 2);
        assert_eq!(packed.reconstruct_codes(), expected.reconstruct_codes());
        // Counter equivalence with the closed form.
        let est = estimate(&desc, &tile, &spec, Some(&epi));
        assert_eq!(report.counters, est.counters);
    }

    #[test]
    fn estimate_scales_with_problem() {
        let spec = GpuSpec::rtx3090();
        let tile = TileConfig::new(64, 64);
        let small = estimate(&ApmmDesc::unsigned(256, 256, 256, 1, 1), &tile, &spec, None);
        let big = estimate(
            &ApmmDesc::unsigned(1024, 1024, 1024, 1, 1),
            &tile,
            &spec,
            None,
        );
        assert!(big.counters.tc_macs > 30 * small.counters.tc_macs);
        assert!(big.time_s() > small.time_s());
    }

    #[test]
    fn packed_output_shrinks_store_traffic() {
        let spec = GpuSpec::rtx3090();
        let desc = ApmmDesc::unsigned(512, 512, 512, 1, 2);
        let tile = TileConfig::new(32, 64);
        let epi = Epilogue::quantize(8.0, 0.0, 2);
        let raw = estimate(&desc, &tile, &spec, None);
        let fused = estimate(&desc, &tile, &spec, Some(&epi));
        // 32-bit vs 2-bit stores: 16× reduction.
        assert_eq!(
            raw.counters.global_store_bytes,
            16 * fused.counters.global_store_bytes
        );
    }

    #[test]
    fn covered_interval_math() {
        // p = 2, bm = 16, M = 24 → batched 48 rows in 3 blocks of 16:
        // each covers 8 outputs.
        assert_eq!(covered(24, 2, 16, 0), 8);
        assert_eq!(covered(24, 2, 16, 1), 8);
        assert_eq!(covered(24, 2, 16, 2), 8);
        // Edge: M = 20 → batched 40 rows: blocks cover 8, 8, 4.
        assert_eq!(covered(20, 2, 16, 0), 8);
        assert_eq!(covered(20, 2, 16, 1), 8);
        assert_eq!(covered(20, 2, 16, 2), 4);
        // Totals always equal M.
        let total: usize = (0..3).map(|b| covered(20, 2, 16, b)).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn overheads_are_small_and_shrink_with_size() {
        let spec = GpuSpec::rtx3090();
        let small = {
            let d = ApmmDesc::unsigned(128, 256, 128 * 9, 1, 2);
            overheads(&d, &TileConfig::new(32, 64), &spec)
        };
        let large = {
            let d = ApmmDesc::unsigned(1024, 256, 1024 * 9, 1, 2);
            overheads(&d, &TileConfig::new(64, 64), &spec)
        };
        assert!(small.combine_pct() < 25.0);
        assert!(large.combine_pct() < small.combine_pct());
    }
}
