//! Memory-efficient bit combination and output packing (paper §4.1(b)).
//!
//! After the tensor-core passes produce 32-bit partials, two memory
//! bottlenecks remain: reducing `p·q` partial matrices into the final output
//! (solved by the in-block shift-add — see `simmap`), and converting 32-bit
//! values into `q`-bit packed codes for the next layer (solved here by the
//! ballot-style inter-thread packing, emulated via `apnn_bitpack::ballot`).

use apnn_bitpack::{ballot, BitPlanes, Encoding};

use crate::fusion::Epilogue;

/// Quantize the row-major `m×n` accumulator matrix through `epi` and pack
/// the resulting codes **transposed** (rows = n, cols = m) so the packed
/// planes can serve directly as the next layer's activation operand.
///
/// The per-element quantization + per-warp ballot packing mirrors the GPU
/// routine: each output element is quantized in a register, then 32 "lanes"
/// at a time are packed into aligned words. The channel index passed to the
/// epilogue is the output-feature index `i` (the row of `Y`).
pub fn quantize_pack_transposed(
    y: &[i32],
    m: usize,
    n: usize,
    epi: &Epilogue,
    bits: u32,
) -> BitPlanes {
    let mut codes = Vec::new();
    let mut out = BitPlanes::zeros(n, m, bits, Encoding::ZeroOne);
    quantize_pack_transposed_into(y, m, n, epi, bits, &mut codes, &mut out);
    out
}

/// [`quantize_pack_transposed`] writing into caller-owned buffers: `codes`
/// is the transposed quantized-code scratch, `out` the packed result
/// (rebuilt in place, see [`BitPlanes::from_codes_into`]). Allocation-free
/// once both have reached their peak capacity — the workspace-reuse form
/// used by steady-state serving.
pub fn quantize_pack_transposed_into(
    y: &[i32],
    m: usize,
    n: usize,
    epi: &Epilogue,
    bits: u32,
    codes: &mut Vec<u32>,
    out: &mut BitPlanes,
) {
    assert_eq!(y.len(), m * n);
    assert_eq!(
        epi.output_bits(),
        Some(bits),
        "epilogue must end in quantize"
    );
    // Codes of the transposed output: row j (batch), col i (feature).
    // Every code is stored by the transpose loop — no zeroing pass.
    apnn_bitpack::resize_for_overwrite(codes, n * m);
    for i in 0..m {
        for j in 0..n {
            codes[j * m + i] = epi.apply_to_code(y[i * n + j], i);
        }
    }
    out.from_codes_into(codes, n, m, bits, Encoding::ZeroOne);
}

/// The warp-level packing route used on the GPU: quantize a stream of 32
/// accumulators (one per lane) and ballot-pack them into `bits` words.
/// Functionally equivalent to the element-wise path; exposed for tests that
/// prove the equivalence and for the NN executor's traffic accounting.
pub fn quantize_ballot_pack(
    accs: &[i32; 32],
    channel_of_lane: &[usize; 32],
    epi: &Epilogue,
    bits: u32,
) -> Vec<u32> {
    let codes: [u32; 32] =
        std::array::from_fn(|lane| epi.apply_to_code(accs[lane], channel_of_lane[lane]));
    ballot::pack_codes(&codes, bits)
}

/// Bytes of global traffic written per element at `bits` precision — the
/// quantity the §5.1 minimal-traffic dataflow compares against the 4-byte
/// i32 alternative (`32n` vs `qn` bits in the paper's intro example).
pub fn packed_store_bytes(elements: usize, bits: u32) -> u64 {
    ((elements as u64) * bits as u64).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apnn_bitpack::ballot::unpack_codes;

    #[test]
    fn pack_transposes_and_quantizes() {
        // Y = [[0, 5], [10, 3]] (2x2), quantize scale=2, zp=0, bits=2.
        let y = vec![0, 5, 10, 3];
        let epi = Epilogue::quantize(2.0, 0.0, 2);
        let packed = quantize_pack_transposed(&y, 2, 2, &epi, 2);
        assert_eq!(packed.rows(), 2);
        assert_eq!(packed.cols(), 2);
        let codes = packed.reconstruct_codes();
        // Transposed: (j=0): [q(0), q(10)] = [0, 3(clamped from 5)],
        //             (j=1): [q(5), q(3)] = [2, 1].
        assert_eq!(codes, vec![0, 3, 2, 1]);
    }

    #[test]
    fn ballot_route_matches_elementwise() {
        let epi = Epilogue::quantize(1.5, -2.0, 3);
        let accs: [i32; 32] = std::array::from_fn(|i| (i as i32) - 16);
        let chans: [usize; 32] = [0; 32];
        let words = quantize_ballot_pack(&accs, &chans, &epi, 3);
        let codes = unpack_codes(&words);
        for lane in 0..32 {
            assert_eq!(codes[lane], epi.apply_to_code(accs[lane], 0));
        }
    }

    #[test]
    fn store_bytes_math() {
        // The paper's dataflow example: n 2-bit activations cost 2n bits.
        assert_eq!(packed_store_bytes(1000, 2), 250);
        assert_eq!(packed_store_bytes(1000, 32), 4000);
        assert_eq!(packed_store_bytes(3, 3), 2); // rounds up
    }
}
