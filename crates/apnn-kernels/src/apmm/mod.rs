//! Arbitrary-Precision Matrix Multiplication — APMM (paper §4.1).
//!
//! `Y[m×n] = W[m×k] · Xᵀ[n×k]` where `W` carries `p`-bit and `X` `q`-bit
//! codes under arbitrary encodings. The kernel emulates the product with
//! `p·q` one-bit tensor-core passes, virtually batched into one large BMMA
//! (§4.1(a)), and performs the shift-add bit combination fused in shared
//! memory/registers (§4.1(b)).
//!
//! Three execution paths share one tiling:
//! * [`Apmm::execute`] — functional multi-threaded CPU compute (bit-serial
//!   words + popcount), the "real" engine measured by the Criterion benches.
//! * [`Apmm::simulate`] — closed-form counter estimate priced by the
//!   `apnn-sim` cost model (fast, any problem size).
//! * [`simmap::run_functional`] — the tiled algorithm executed block-by-block
//!   through the simulator with real `bmma` fragment math; used by tests to
//!   prove the closed-form counters match the actual algorithm.

pub mod combine;
pub mod config;
pub mod cpu;
pub mod simmap;

pub use config::TileConfig;

use apnn_bitpack::{BitPlanes, Encoding};
use apnn_sim::{GpuSpec, KernelReport};

use crate::autotune::autotune;
use crate::fusion::Epilogue;
use crate::select::{plan, EmulationPlan};

/// Shape + precision description of one APMM problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApmmDesc {
    /// Output rows (weight rows).
    pub m: usize,
    /// Output columns (activation rows; `X` is stored N×K).
    pub n: usize,
    /// Reduction length.
    pub k: usize,
    /// Weight bits `p`.
    pub w_bits: u32,
    /// Activation bits `q`.
    pub x_bits: u32,
    /// Weight encoding.
    pub w_enc: Encoding,
    /// Activation encoding.
    pub x_enc: Encoding,
}

impl ApmmDesc {
    /// Both operands unsigned (`Case I`).
    pub fn unsigned(m: usize, n: usize, k: usize, p: u32, q: u32) -> Self {
        ApmmDesc {
            m,
            n,
            k,
            w_bits: p,
            x_bits: q,
            w_enc: Encoding::ZeroOne,
            x_enc: Encoding::ZeroOne,
        }
    }

    /// ±1 binary weights with unsigned `q`-bit activations — the `w1aq`
    /// configuration the paper evaluates most (`Case III`, or `Case II` when
    /// the activations are also ±1 one-bit).
    pub fn w1aq(m: usize, n: usize, k: usize, q: u32, x_enc: Encoding) -> Self {
        ApmmDesc {
            m,
            n,
            k,
            w_bits: 1,
            x_bits: q,
            w_enc: Encoding::PlusMinusOne,
            x_enc,
        }
    }

    /// Batched row extent `p·M` (§4.1(a)).
    #[inline]
    pub fn batched_m(&self) -> usize {
        self.w_bits as usize * self.m
    }

    /// Batched column extent `q·N`.
    #[inline]
    pub fn batched_n(&self) -> usize {
        self.x_bits as usize * self.n
    }

    /// The operator-selection plan for this problem (§3.2).
    pub fn plan(&self) -> EmulationPlan {
        plan(self.w_enc, self.x_enc)
    }

    /// K padded to the 128-bit fragment boundary.
    pub fn k_padded(&self) -> usize {
        apnn_bitpack::word::pad_to_bmma_k(self.k)
    }

    /// Total 1-bit tensor-core MACs the emulation performs
    /// (`p·q · M·N·K_pad` — the §3.1 cost analysis).
    pub fn emulated_macs(&self) -> u64 {
        self.w_bits as u64
            * self.x_bits as u64
            * self.m as u64
            * self.n as u64
            * self.k_padded() as u64
    }

    /// Validate that operand planes match this description.
    pub fn check_operands(&self, w: &BitPlanes, x: &BitPlanes) {
        assert_eq!(w.rows(), self.m, "weight rows");
        assert_eq!(w.cols(), self.k, "weight cols");
        assert_eq!(w.bits(), self.w_bits, "weight bits");
        assert_eq!(w.encoding(), self.w_enc, "weight encoding");
        assert_eq!(x.rows(), self.n, "activation rows");
        assert_eq!(x.cols(), self.k, "activation cols");
        assert_eq!(x.bits(), self.x_bits, "activation bits");
        assert_eq!(x.encoding(), self.x_enc, "activation encoding");
    }
}

/// Output of a fused APMM.
#[derive(Debug, Clone)]
pub enum FusedOutput {
    /// Raw 32-bit accumulators (output layer of a network).
    Int32(Vec<i32>),
    /// Quantized codes packed for the next layer, stored **transposed**
    /// (rows = n = batch, cols = m = features) so the consumer can use it as
    /// its activation operand directly — the minimal-traffic dataflow of
    /// §5.1.
    Packed(BitPlanes),
}

/// An APMM kernel instance: problem description + tile configuration.
#[derive(Debug, Clone)]
pub struct Apmm {
    /// Problem description.
    pub desc: ApmmDesc,
    /// Block tiling (autotuned unless overridden).
    pub tile: TileConfig,
}

impl Apmm {
    /// Create with an autotuned tile configuration (§4.3.2).
    pub fn new(desc: ApmmDesc) -> Self {
        let tile = autotune(desc.m, desc.n, desc.k, desc.w_bits, desc.x_bits);
        Apmm { desc, tile }
    }

    /// Create with an explicit tile configuration.
    pub fn with_tile(desc: ApmmDesc, tile: TileConfig) -> Self {
        Apmm { desc, tile }
    }

    /// Functional CPU execution: returns the row-major `m×n` i32 product of
    /// the decoded operands.
    pub fn execute(&self, w: &BitPlanes, x: &BitPlanes) -> Vec<i32> {
        self.desc.check_operands(w, x);
        cpu::apmm_cpu(&self.desc, w, x)
    }

    /// Functional CPU execution with a fused epilogue. When the epilogue
    /// ends in quantization the result is packed (transposed) for the next
    /// layer; otherwise the (epilogue-transformed, rounded) i32 accumulators
    /// are returned.
    pub fn execute_fused(&self, w: &BitPlanes, x: &BitPlanes, epi: &Epilogue) -> FusedOutput {
        let y = self.execute(w, x);
        finish_fused(y, self.desc.m, self.desc.n, epi)
    }

    /// Hoist every per-call invariant out of the serving loop: take
    /// ownership of the packed weights, fix the emulation plan, and
    /// precompute the weight-side correction vectors (§3.2's `W·J` sums).
    /// The result executes repeatedly without re-packing or re-planning.
    pub fn prepare(&self, weights: BitPlanes) -> PreparedApmm {
        assert_eq!(weights.rows(), self.desc.m, "weight rows");
        assert_eq!(weights.cols(), self.desc.k, "weight cols");
        assert_eq!(weights.bits(), self.desc.w_bits, "weight bits");
        assert_eq!(weights.encoding(), self.desc.w_enc, "weight encoding");
        crate::stats::count_weight_prepare();
        let plan = self.desc.plan();
        let w_row_sums = cpu::weight_row_sums(&weights, plan);
        let arm = apnn_bitpack::PopcntArm::detect();
        let micro = crate::autotune::select_micro(
            self.desc.n,
            weights.plane(0).words_per_row(),
            self.desc.w_bits,
            self.desc.x_bits,
            arm,
        );
        PreparedApmm {
            desc: self.desc,
            tile: self.tile,
            plan,
            micro,
            arm,
            weights,
            w_row_sums,
        }
    }

    /// Simulated-GPU latency report for the un-fused (i32 output) kernel.
    pub fn simulate(&self, spec: &GpuSpec) -> KernelReport {
        simmap::estimate(&self.desc, &self.tile, spec, None)
    }

    /// Simulated-GPU latency report with a fused epilogue.
    pub fn simulate_fused(&self, spec: &GpuSpec, epi: &Epilogue) -> KernelReport {
        simmap::estimate(&self.desc, &self.tile, spec, Some(epi))
    }
}

/// An APMM kernel compiled for serving: packed weights + emulation plan +
/// correction vectors, all materialized once (§4.1 batched emulation with
/// the per-call setup hoisted out of the hot loop).
#[derive(Debug, Clone)]
pub struct PreparedApmm {
    /// Problem description (`n` is the *compiled* batch; calls may shard).
    pub desc: ApmmDesc,
    /// Block tiling chosen at compile time.
    pub tile: TileConfig,
    /// Operator-selection plan fixed at compile time.
    pub plan: crate::select::EmulationPlan,
    micro: crate::autotune::MicroTile,
    arm: apnn_bitpack::PopcntArm,
    weights: BitPlanes,
    w_row_sums: Vec<Vec<i32>>,
}

impl PreparedApmm {
    /// The packed weight operand.
    pub fn weights(&self) -> &BitPlanes {
        &self.weights
    }

    /// The CPU microkernel `(JB, KB)` tile this plan executes with (chosen
    /// at prepare time by [`crate::autotune::autotune_micro`]; same
    /// accessor pair as [`crate::apconv::PreparedConv`]).
    pub fn micro(&self) -> crate::autotune::MicroTile {
        self.micro
    }

    /// Replace the microkernel tile (bench sweeps, differential tests) —
    /// every value is bit-identical.
    pub fn with_micro(mut self, micro: crate::autotune::MicroTile) -> Self {
        self.micro = micro;
        self
    }

    /// The popcount arm this plan's microkernel runs on (bound once at
    /// prepare time by [`apnn_bitpack::PopcntArm::detect`]).
    pub fn arm(&self) -> apnn_bitpack::PopcntArm {
        self.arm
    }

    /// Force a popcount arm (tests, benches, CI force-arm legs). An arm
    /// the CPU cannot run is clamped to the detected best; every arm is
    /// bit-identical.
    pub fn with_arm(mut self, arm: apnn_bitpack::PopcntArm) -> Self {
        self.arm = arm.sanitized();
        self
    }

    /// Validate an activation operand shard (rows may be ≤ the compiled
    /// batch; everything else must match).
    fn check_acts(&self, x: &BitPlanes) {
        assert!(x.rows() <= self.desc.n, "activation rows exceed plan batch");
        assert_eq!(x.cols(), self.desc.k, "activation cols");
        assert_eq!(x.bits(), self.desc.x_bits, "activation bits");
        assert_eq!(x.encoding(), self.desc.x_enc, "activation encoding");
    }

    /// Row-major `m × x.rows()` i32 product, reusing every precomputed
    /// artifact.
    pub fn execute(&self, x: &BitPlanes) -> Vec<i32> {
        self.check_acts(x);
        cpu::apmm_exec(
            &self.desc,
            &self.weights,
            x,
            self.plan,
            Some(&self.w_row_sums),
            self.micro,
            self.arm,
        )
    }

    /// [`PreparedApmm::execute`] with a fused epilogue (packed output when
    /// the chain quantizes).
    pub fn execute_fused(&self, x: &BitPlanes, epi: &Epilogue) -> FusedOutput {
        let y = self.execute(x);
        finish_fused(y, self.desc.m, x.rows(), epi)
    }

    /// Sequential workspace form of [`PreparedApmm::execute`]: the raw
    /// `m × x.rows()` product lands in `out`, every intermediate lives in
    /// `scratch`, and — once the buffers have reached the plan's full-batch
    /// capacity — the call performs **zero heap allocations**. Results are
    /// bit-identical to the thread-pool path (integer-exact kernels, same
    /// per-element accumulation order).
    pub fn execute_into(&self, x: &BitPlanes, scratch: &mut cpu::ApmmScratch, out: &mut Vec<i32>) {
        self.check_acts(x);
        let cpu::ApmmScratch { col_sums, .. } = scratch;
        cpu::apmm_exec_seq(
            &self.desc,
            &self.weights,
            x,
            self.plan,
            &self.w_row_sums,
            self.micro,
            self.arm,
            col_sums,
            out,
        );
    }

    /// Sequential workspace form of [`PreparedApmm::execute_fused`] for
    /// quantizing epilogues: accumulators go through `scratch`, quantized
    /// transposed codes through `codes`, and the packed next-layer operand
    /// is rebuilt in place in `out`. Panics if `epi` does not end in
    /// quantization (the output layer uses [`PreparedApmm::execute_into`]).
    pub fn execute_fused_into(
        &self,
        x: &BitPlanes,
        epi: &Epilogue,
        scratch: &mut cpu::ApmmScratch,
        codes: &mut Vec<u32>,
        out: &mut BitPlanes,
    ) {
        let bits = epi
            .output_bits()
            .expect("execute_fused_into requires a quantizing epilogue");
        self.check_acts(x);
        let cpu::ApmmScratch { col_sums, acc } = scratch;
        cpu::apmm_exec_seq(
            &self.desc,
            &self.weights,
            x,
            self.plan,
            &self.w_row_sums,
            self.micro,
            self.arm,
            col_sums,
            acc,
        );
        combine::quantize_pack_transposed_into(acc, self.desc.m, x.rows(), epi, bits, codes, out);
    }
}

/// Apply a fused epilogue to raw `m×n` accumulators: packed (transposed)
/// output when the chain quantizes, epilogue-transformed i32 otherwise.
/// Single implementation shared by the ad-hoc and prepared paths.
fn finish_fused(mut y: Vec<i32>, m: usize, n: usize, epi: &Epilogue) -> FusedOutput {
    match epi.output_bits() {
        Some(bits) => FusedOutput::Packed(combine::quantize_pack_transposed(&y, m, n, epi, bits)),
        None => {
            if !epi.ops().is_empty() {
                for (idx, v) in y.iter_mut().enumerate() {
                    let channel = idx / n.max(1);
                    *v = epi.apply(*v, channel) as i32;
                }
            }
            FusedOutput::Int32(y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_helpers() {
        let d = ApmmDesc::unsigned(64, 256, 500, 2, 3);
        assert_eq!(d.batched_m(), 128);
        assert_eq!(d.batched_n(), 768);
        assert_eq!(d.k_padded(), 512);
        assert_eq!(d.emulated_macs(), 6 * 64 * 256 * 512);
    }

    #[test]
    fn new_autotunes() {
        let a = Apmm::new(ApmmDesc::unsigned(4096, 4096, 1024, 2, 2));
        assert_eq!((a.tile.bm, a.tile.bn), (128, 128));
    }

    #[test]
    fn prepared_matches_adhoc_and_serves_partial_batches() {
        let mut seed = 91u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let desc = ApmmDesc::w1aq(9, 8, 150, 2, Encoding::ZeroOne);
        let wv: Vec<i32> = (0..desc.m * desc.k)
            .map(|_| if next() % 2 == 0 { -1 } else { 1 })
            .collect();
        let w = BitPlanes::from_signed_binary(&wv, desc.m, desc.k);
        let xc: Vec<u32> = (0..desc.n * desc.k).map(|_| next() % 4).collect();
        let x = BitPlanes::from_codes(&xc, desc.n, desc.k, 2, Encoding::ZeroOne);

        let apmm = Apmm::new(desc);
        let adhoc = apmm.execute(&w, &x);
        let prepared = apmm.prepare(w);
        assert_eq!(prepared.execute(&x), adhoc);

        // A partial shard (smaller batch) reuses the same prepared weights.
        let half: Vec<u32> = xc[..desc.n / 2 * desc.k].to_vec();
        let x_half = BitPlanes::from_codes(&half, desc.n / 2, desc.k, 2, Encoding::ZeroOne);
        let got = prepared.execute(&x_half);
        for i in 0..desc.m {
            for j in 0..desc.n / 2 {
                assert_eq!(got[i * (desc.n / 2) + j], adhoc[i * desc.n + j]);
            }
        }
    }

    #[test]
    fn row_sums_build_once_at_prepare_never_at_execute() {
        // Mirrored Case III ({0,1} weights, ±1 activations) consumes the
        // W·J weight-row sums: `prepare` must build them exactly once and
        // `execute` must never rebuild them, while the ad-hoc entry point
        // rebuilds per call — the hoist the stats counter makes testable.
        let desc = ApmmDesc {
            m: 6,
            n: 5,
            k: 96,
            w_bits: 2,
            x_bits: 1,
            w_enc: Encoding::ZeroOne,
            x_enc: Encoding::PlusMinusOne,
        };
        let wc: Vec<u32> = (0..desc.m * desc.k).map(|i| (i % 4) as u32).collect();
        let w = BitPlanes::from_codes(&wc, desc.m, desc.k, 2, Encoding::ZeroOne);
        let xv: Vec<i32> = (0..desc.n * desc.k)
            .map(|i| if i % 3 == 0 { -1 } else { 1 })
            .collect();
        let x = BitPlanes::from_signed_binary(&xv, desc.n, desc.k);

        let apmm = Apmm::new(desc);
        let adhoc_scope = crate::stats::scope();
        let want = apmm.execute(&w, &x);
        let _ = apmm.execute(&w, &x);
        assert_eq!(
            adhoc_scope.row_sum_builds(),
            2,
            "the ad-hoc path rebuilds W·J on every call"
        );

        let prepare_scope = crate::stats::scope();
        let prepared = apmm.prepare(w);
        assert_eq!(prepare_scope.row_sum_builds(), 1, "one build per plan");
        assert_eq!(prepared.execute(&x), want);
        assert_eq!(prepared.execute(&x), want);
        assert_eq!(
            prepare_scope.row_sum_builds(),
            1,
            "execute must not rebuild W·J"
        );
    }

    #[test]
    fn prepared_into_paths_match_allocating_paths() {
        let mut seed = 77u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let desc = ApmmDesc::w1aq(7, 6, 140, 2, Encoding::ZeroOne);
        let wv: Vec<i32> = (0..desc.m * desc.k)
            .map(|_| if next() % 2 == 0 { -1 } else { 1 })
            .collect();
        let w = BitPlanes::from_signed_binary(&wv, desc.m, desc.k);
        let xc: Vec<u32> = (0..desc.n * desc.k).map(|_| next() % 4).collect();
        let x = BitPlanes::from_codes(&xc, desc.n, desc.k, 2, Encoding::ZeroOne);
        let prepared = Apmm::new(desc).prepare(w);

        let mut scratch = cpu::ApmmScratch::default();
        let mut out = Vec::new();
        prepared.execute_into(&x, &mut scratch, &mut out);
        assert_eq!(out, prepared.execute(&x));

        let epi = Epilogue::quantize(8.0, 0.0, 2);
        let mut codes = Vec::new();
        let mut packed = apnn_bitpack::BitPlanes::zeros(desc.n, desc.m, 2, Encoding::ZeroOne);
        prepared.execute_fused_into(&x, &epi, &mut scratch, &mut codes, &mut packed);
        let FusedOutput::Packed(want) = prepared.execute_fused(&x, &epi) else {
            panic!("expected packed output")
        };
        assert_eq!(packed.reconstruct_codes(), want.reconstruct_codes());
        assert_eq!(packed.rows(), want.rows());
        assert_eq!(packed.cols(), want.cols());
    }

    #[test]
    #[should_panic(expected = "weight rows")]
    fn operand_validation() {
        let d = ApmmDesc::unsigned(4, 4, 16, 1, 1);
        let w = BitPlanes::from_codes(&[0; 3 * 16], 3, 16, 1, Encoding::ZeroOne);
        let x = BitPlanes::from_codes(&vec![0; 4 * 16], 4, 16, 1, Encoding::ZeroOne);
        d.check_operands(&w, &x);
    }
}
