//! Functional multi-threaded CPU backend for APMM.
//!
//! This is the "real compute" path: bit-packed rows, XOR/AND + popcount
//! inner loops (the CPU equivalent of the tensor-core `bmma` pipeline), and
//! Rayon data parallelism over output rows. The Criterion benches measure
//! this engine; its results are validated against the naive i32 oracle and
//! against the fragment-level [`crate::emulate::ap_bit_mm`].

use apnn_bitpack::{BitPlanes, PopcntArm};
use rayon::prelude::*;

use super::ApmmDesc;
use crate::autotune::{select_micro, MicroTile};
use crate::micro::{popc_tile, PlaneView, MAX_TILE};
use crate::select::{adjust_partial, EmulationCase, EmulationPlan};

/// Which correction vectors a case consumes.
pub(crate) fn correction_needs(case: EmulationCase) -> (bool, bool) {
    use EmulationCase::*;
    let needs_row = matches!(
        case,
        AndActivationTransformed | XorDerivedUnsigned | XorDerivedWeightTransformed
    );
    let needs_col = matches!(
        case,
        AndWeightTransformed | XorDerivedUnsigned | XorDerivedActivationTransformed
    );
    (needs_row, needs_col)
}

/// Compute the per-plane weight-row sums a case's correction consumes (the
/// `W·J` vectors of §3.2). Returns an empty vec when the plan needs none —
/// this is the weight-side precomputation hoisted into compiled plans.
/// Every *actual* build bumps [`crate::stats::row_sum_builds`], so tests
/// can prove prepared kernels compute these exactly once per plan and
/// never on the inference hot path.
pub fn weight_row_sums(w: &BitPlanes, eplan: EmulationPlan) -> Vec<Vec<i32>> {
    let (needs_row, _) = correction_needs(eplan.case);
    if needs_row {
        crate::stats::count_row_sums_build();
        (0..w.bits()).map(|s| w.plane(s).row_sums()).collect()
    } else {
        Vec::new()
    }
}

/// Compute the decoded `m×n` i32 product with the default (Ampere) plan.
pub fn apmm_cpu(desc: &ApmmDesc, w: &BitPlanes, x: &BitPlanes) -> Vec<i32> {
    apmm_cpu_with_plan(desc, w, x, desc.plan())
}

/// Compute with an explicit emulation plan — e.g.
/// [`crate::select::plan_xor_only`] for Turing-class (XOR-only) targets.
///
/// Tile selection goes through the same shape-keyed
/// [`select_micro`] memo the plan compiler uses, so hammering this
/// entry point re-selects nothing after the first call per shape.
pub fn apmm_cpu_with_plan(
    desc: &ApmmDesc,
    w: &BitPlanes,
    x: &BitPlanes,
    eplan: EmulationPlan,
) -> Vec<i32> {
    let arm = PopcntArm::detect();
    let micro = select_micro(
        desc.n,
        w.plane(0).words_per_row(),
        desc.w_bits,
        desc.x_bits,
        arm,
    );
    apmm_cpu_tuned(desc, w, x, eplan, micro, arm)
}

/// [`apmm_cpu_with_plan`] with an explicit microkernel tile — the knob the
/// differential proptests and the kernel-level bench sweep turn. Any tile
/// is bit-identical (exact i32 accumulation); only throughput moves.
pub fn apmm_cpu_with_micro(
    desc: &ApmmDesc,
    w: &BitPlanes,
    x: &BitPlanes,
    eplan: EmulationPlan,
    micro: MicroTile,
) -> Vec<i32> {
    apmm_cpu_tuned(desc, w, x, eplan, micro, PopcntArm::detect())
}

/// [`apmm_cpu_with_micro`] with an explicit popcount arm as well — the
/// fully-pinned entry point the arm-differential proptests and the bench
/// arm sweep drive. Every `(tile, arm)` pair is bit-identical.
pub fn apmm_cpu_tuned(
    desc: &ApmmDesc,
    w: &BitPlanes,
    x: &BitPlanes,
    eplan: EmulationPlan,
    micro: MicroTile,
    arm: PopcntArm,
) -> Vec<i32> {
    // The ad-hoc path promises a full `m×n` product; only the prepared
    // (compiled-plan) path may serve partial batch shards.
    assert_eq!(x.rows(), desc.n, "activation rows");
    apmm_exec(desc, w, x, eplan, None, micro, arm)
}

/// Shared core: multiply packed `w` (rows = output features) against packed
/// `x` (rows = batch; may carry *fewer* rows than `desc.n` when a compiled
/// plan serves a partial shard). `w_row_sums_pre` supplies precomputed
/// weight corrections from a prepared kernel; `None` computes them on the
/// fly (the ad-hoc path).
pub(crate) fn apmm_exec(
    desc: &ApmmDesc,
    w: &BitPlanes,
    x: &BitPlanes,
    eplan: EmulationPlan,
    w_row_sums_pre: Option<&[Vec<i32>]>,
    micro: MicroTile,
    arm: PopcntArm,
) -> Vec<i32> {
    let m = desc.m;
    let n = x.rows();
    assert!(n <= desc.n, "activation batch exceeds plan batch");
    let (p, q) = (desc.w_bits as usize, desc.x_bits as usize);
    let k_valid = desc.k as i32;
    assert_eq!(
        w.plane(0).padded_cols(),
        x.plane(0).padded_cols(),
        "operands must share padded K"
    );
    let mut y = vec![0i32; m * n];
    if n == 0 {
        // A zero-row shard is a legal (empty) product: return the `m × 0`
        // output instead of handing `par_chunks_mut` a fabricated width.
        return y;
    }

    // Correction vectors (bit-plane sums). The weight side is loop-invariant
    // across calls and comes precomputed from prepared kernels; the
    // activation side depends on this call's operand.
    let (needs_row, needs_col) = correction_needs(eplan.case);
    let x_col_sums: Vec<Vec<i32>> = if needs_col {
        (0..q).map(|t| x.plane(t as u32).row_sums()).collect()
    } else {
        Vec::new()
    };
    let w_row_sums_local;
    let w_row_sums: &[Vec<i32>] = match w_row_sums_pre {
        Some(pre) => pre,
        None => {
            w_row_sums_local = weight_row_sums(w, eplan);
            &w_row_sums_local
        }
    };

    let MicroTile { jb, kb } = micro.sanitized();
    let arm = arm.sanitized();
    let w_view = PlaneView::from_bitplanes(w);
    let x_view = PlaneView::from_bitplanes(x);
    y.par_chunks_mut(n).enumerate().for_each_init(
        // One accumulator tile per pool participant, reused across every
        // output row it claims (popc_tile zeroes the live prefix itself).
        || [0i32; MAX_TILE],
        |tile, (i, row_out)| {
            let mut j0 = 0;
            while j0 < n {
                let jbc = jb.min(n - j0);
                let live = &mut tile[..jbc * p * q];
                popc_tile(eplan.op, arm, &w_view, i, &x_view, j0, jbc, kb, live);
                combine_apmm_block(
                    eplan.case,
                    live,
                    (p, q),
                    k_valid,
                    j0,
                    |s| if needs_row { w_row_sums[s][i] } else { 0 },
                    |t, j| if needs_col { x_col_sums[t][j] } else { 0 },
                    &mut row_out[j0..j0 + jbc],
                );
                j0 += jbc;
            }
        },
    );
    y
}

/// Consume one popcount tile block for a `jbc`-wide batch-column block:
/// apply the §3.2 correction ([`adjust_partial`]) and the shift-add
/// combination, in the same s-outer / t-inner order as the
/// pre-microkernel kernels (bit-identical results). This is the
/// **single** copy of the APMM combination arithmetic — the parallel and
/// sequential paths both consume their tiles here; only the correction
/// lookups differ (closures, so each path keeps its own table layout).
#[allow(clippy::too_many_arguments)]
fn combine_apmm_block(
    case: EmulationCase,
    tile: &[i32],
    (p, q): (usize, usize),
    k_valid: i32,
    j0: usize,
    row_sum: impl Fn(usize) -> i32,
    col_sum: impl Fn(usize, usize) -> i32,
    out_block: &mut [i32],
) {
    for (jj, out_v) in out_block.iter_mut().enumerate() {
        let j = j0 + jj;
        let mut acc = 0i32;
        for s in 0..p {
            for t in 0..q {
                let adj = adjust_partial(
                    case,
                    tile[(jj * p + s) * q + t],
                    k_valid,
                    row_sum(s),
                    col_sum(t, j),
                );
                acc += adj << (s + t);
            }
        }
        *out_v = acc;
    }
}

/// Reusable per-call scratch for the sequential (workspace) APMM path:
/// the activation-side correction table and the raw accumulator buffer.
/// Size it once with [`ApmmScratch::reserve`] (at the plan's full batch);
/// every later call — full or partial shard — is then allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ApmmScratch {
    /// Flat `q × n` activation column sums (input-dependent, rebuilt per
    /// call in place).
    pub(crate) col_sums: Vec<i32>,
    /// Raw `m × n` i32 accumulators for fused executions.
    pub(crate) acc: Vec<i32>,
}

impl ApmmScratch {
    /// Pre-size the scratch: `col_sums` activation-correction entries
    /// (`x_bits × batch`) and `acc` accumulator elements (`m × batch`).
    pub fn reserve(&mut self, col_sums: usize, acc: usize) {
        self.col_sums
            .reserve(col_sums.saturating_sub(self.col_sums.len()));
        self.acc.reserve(acc.saturating_sub(self.acc.len()));
    }
}

/// Sequential zero-allocation core of the prepared path: identical
/// arithmetic (same per-element accumulation order, hence bit-identical
/// results) to [`apmm_exec`], but running on the **calling thread** with
/// every buffer caller-owned. Serving workers are the concurrency unit for
/// this path; the thread-pool path above stays for ad-hoc/batch calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apmm_exec_seq(
    desc: &ApmmDesc,
    w: &BitPlanes,
    x: &BitPlanes,
    eplan: EmulationPlan,
    w_row_sums: &[Vec<i32>],
    micro: MicroTile,
    arm: PopcntArm,
    col_sums: &mut Vec<i32>,
    out: &mut Vec<i32>,
) {
    let m = desc.m;
    let n = x.rows();
    assert!(n <= desc.n, "activation batch exceeds plan batch");
    let (p, q) = (desc.w_bits as usize, desc.x_bits as usize);
    let k_valid = desc.k as i32;
    assert_eq!(
        w.plane(0).padded_cols(),
        x.plane(0).padded_cols(),
        "operands must share padded K"
    );

    // Every accumulator is stored by the loop below — no zeroing pass.
    apnn_bitpack::resize_for_overwrite(out, m * n);
    if n == 0 {
        col_sums.clear();
        return;
    }

    let (needs_row, needs_col) = correction_needs(eplan.case);
    if needs_col {
        // Every entry is stored below — reshape without the zeroing pass.
        apnn_bitpack::resize_for_overwrite(col_sums, q * n);
        for t in 0..q {
            let plane = x.plane(t as u32);
            for j in 0..n {
                col_sums[t * n + j] = plane.row_popcount(j) as i32;
            }
        }
    } else {
        col_sums.clear();
    }

    let MicroTile { jb, kb } = micro.sanitized();
    let arm = arm.sanitized();
    let w_view = PlaneView::from_bitplanes(w);
    let x_view = PlaneView::from_bitplanes(x);
    let mut tile = [0i32; MAX_TILE];
    for i in 0..m {
        let row_out = &mut out[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jbc = jb.min(n - j0);
            let live = &mut tile[..jbc * p * q];
            popc_tile(eplan.op, arm, &w_view, i, &x_view, j0, jbc, kb, live);
            combine_apmm_block(
                eplan.case,
                live,
                (p, q),
                k_valid,
                j0,
                |s| if needs_row { w_row_sums[s][i] } else { 0 },
                |t, j| if needs_col { col_sums[t * n + j] } else { 0 },
                &mut row_out[j0..j0 + jbc],
            );
            j0 += jbc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulate::decoded_reference;
    use apnn_bitpack::Encoding;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn rand_codes(len: usize, bits: u32, seed: &mut u64) -> Vec<u32> {
        (0..len).map(|_| (lcg(seed) as u32) % (1 << bits)).collect()
    }

    fn rand_signs(len: usize, seed: &mut u64) -> Vec<i32> {
        (0..len)
            .map(|_| if lcg(seed) & 1 == 0 { -1 } else { 1 })
            .collect()
    }

    #[test]
    fn unsigned_matches_reference_various_shapes() {
        let mut seed = 11;
        for (m, n, k, p, q) in [
            (1, 1, 1, 1, 1),
            (8, 8, 128, 1, 2),
            (33, 65, 200, 2, 2),
            (64, 128, 512, 3, 5),
            (5, 3, 1000, 8, 8),
        ] {
            let wc = rand_codes(m * k, p, &mut seed);
            let xc = rand_codes(n * k, q, &mut seed);
            let w = BitPlanes::from_codes(&wc, m, k, p, Encoding::ZeroOne);
            let x = BitPlanes::from_codes(&xc, n, k, q, Encoding::ZeroOne);
            let desc = ApmmDesc::unsigned(m, n, k, p, q);
            assert_eq!(
                apmm_cpu(&desc, &w, &x),
                decoded_reference(&w, &x),
                "shape {m}x{n}x{k} w{p}a{q}"
            );
        }
    }

    #[test]
    fn signed_binary_matches_reference() {
        let mut seed = 13;
        let (m, n, k) = (24, 40, 300);
        let w = BitPlanes::from_signed_binary(&rand_signs(m * k, &mut seed), m, k);
        let x = BitPlanes::from_signed_binary(&rand_signs(n * k, &mut seed), n, k);
        let desc = ApmmDesc::w1aq(m, n, k, 1, Encoding::PlusMinusOne);
        assert_eq!(apmm_cpu(&desc, &w, &x), decoded_reference(&w, &x));
    }

    #[test]
    fn w1aq_case3_matches_reference() {
        let mut seed = 17;
        for q in [2u32, 3, 4, 8] {
            let (m, n, k) = (16, 20, 250);
            let w = BitPlanes::from_signed_binary(&rand_signs(m * k, &mut seed), m, k);
            let x =
                BitPlanes::from_codes(&rand_codes(n * k, q, &mut seed), n, k, q, Encoding::ZeroOne);
            let desc = ApmmDesc::w1aq(m, n, k, q, Encoding::ZeroOne);
            assert_eq!(apmm_cpu(&desc, &w, &x), decoded_reference(&w, &x), "w1a{q}");
        }
    }

    #[test]
    fn mirrored_case3_matches_reference() {
        let mut seed = 19;
        let (m, n, k, p) = (12, 9, 130, 4);
        let w = BitPlanes::from_codes(&rand_codes(m * k, p, &mut seed), m, k, p, Encoding::ZeroOne);
        let x = BitPlanes::from_signed_binary(&rand_signs(n * k, &mut seed), n, k);
        let desc = ApmmDesc {
            m,
            n,
            k,
            w_bits: p,
            x_bits: 1,
            w_enc: Encoding::ZeroOne,
            x_enc: Encoding::PlusMinusOne,
        };
        assert_eq!(apmm_cpu(&desc, &w, &x), decoded_reference(&w, &x));
    }

    #[test]
    fn xor_only_plan_matches_ampere_plan_every_case() {
        // Turing (XOR-only) plans must produce identical products.
        use crate::select::plan_xor_only;
        let mut seed = 29;
        let cases = [
            (Encoding::ZeroOne, Encoding::ZeroOne, 3u32, 2u32),
            (Encoding::PlusMinusOne, Encoding::ZeroOne, 1, 4),
            (Encoding::ZeroOne, Encoding::PlusMinusOne, 2, 1),
            (Encoding::PlusMinusOne, Encoding::PlusMinusOne, 1, 1),
        ];
        for (w_enc, x_enc, p, q) in cases {
            let (m, n, k) = (14, 22, 250);
            let desc = ApmmDesc {
                m,
                n,
                k,
                w_bits: p,
                x_bits: q,
                w_enc,
                x_enc,
            };
            let mk = |rows: usize, bits: u32, enc: Encoding, seed: &mut u64| {
                if enc == Encoding::PlusMinusOne {
                    BitPlanes::from_signed_binary(&rand_signs(rows * k, seed), rows, k)
                } else {
                    BitPlanes::from_codes(&rand_codes(rows * k, bits, seed), rows, k, bits, enc)
                }
            };
            let w = mk(m, p, w_enc, &mut seed);
            let x = mk(n, q, x_enc, &mut seed);
            let ampere = apmm_cpu(&desc, &w, &x);
            let turing = apmm_cpu_with_plan(&desc, &w, &x, plan_xor_only(w_enc, x_enc));
            assert_eq!(ampere, turing, "{w_enc:?}/{x_enc:?} w{p}a{q}");
        }
    }

    #[test]
    fn sequential_workspace_core_matches_pooled_path_every_case() {
        let mut seed = 37;
        let cases = [
            (Encoding::ZeroOne, Encoding::ZeroOne, 3u32, 2u32),
            (Encoding::PlusMinusOne, Encoding::ZeroOne, 1, 4),
            (Encoding::ZeroOne, Encoding::PlusMinusOne, 2, 1),
            (Encoding::PlusMinusOne, Encoding::PlusMinusOne, 1, 1),
        ];
        for (w_enc, x_enc, p, q) in cases {
            let (m, n, k) = (13, 21, 230);
            let desc = ApmmDesc {
                m,
                n,
                k,
                w_bits: p,
                x_bits: q,
                w_enc,
                x_enc,
            };
            let mk = |rows: usize, bits: u32, enc: Encoding, seed: &mut u64| {
                if enc == Encoding::PlusMinusOne {
                    BitPlanes::from_signed_binary(&rand_signs(rows * k, seed), rows, k)
                } else {
                    BitPlanes::from_codes(&rand_codes(rows * k, bits, seed), rows, k, bits, enc)
                }
            };
            let w = mk(m, p, w_enc, &mut seed);
            let x = mk(n, q, x_enc, &mut seed);
            let eplan = desc.plan();
            let pooled = apmm_cpu(&desc, &w, &x);

            let w_sums = weight_row_sums(&w, eplan);
            let micro = MicroTile { jb: 4, kb: 2 };
            let arm = PopcntArm::detect();
            let mut col_sums = Vec::new();
            let mut out = Vec::new();
            apmm_exec_seq(
                &desc,
                &w,
                &x,
                eplan,
                &w_sums,
                micro,
                arm,
                &mut col_sums,
                &mut out,
            );
            assert_eq!(out, pooled, "{w_enc:?}/{x_enc:?} w{p}a{q}");

            // Partial shard through the same reused buffers.
            let half = n / 2;
            let xh = if x_enc == Encoding::PlusMinusOne {
                BitPlanes::from_signed_binary(&x.values()[..half * k], half, k)
            } else {
                BitPlanes::from_codes(
                    &x.reconstruct_codes()[..half * k],
                    half,
                    k,
                    q,
                    Encoding::ZeroOne,
                )
            };
            apmm_exec_seq(
                &desc,
                &w,
                &xh,
                eplan,
                &w_sums,
                micro,
                arm,
                &mut col_sums,
                &mut out,
            );
            for i in 0..m {
                for j in 0..half {
                    assert_eq!(out[i * half + j], pooled[i * n + j]);
                }
            }
        }
    }

    #[test]
    fn zero_row_batches_yield_empty_products_on_every_path() {
        // Regression: the parallel path used to hand `par_chunks_mut` a
        // fabricated chunk width of `n.max(1)` for zero-row batches; the
        // empty shard must produce the (empty) `m × 0` product on both the
        // pooled and the sequential-workspace path, without panicking.
        let mut seed = 41;
        let (m, k, p, q) = (7, 200, 2u32, 2u32);
        let wc = rand_codes(m * k, p, &mut seed);
        let w = BitPlanes::from_codes(&wc, m, k, p, Encoding::ZeroOne);
        let x0 = BitPlanes::from_codes(&[], 0, k, q, Encoding::ZeroOne);
        let desc = ApmmDesc::unsigned(m, 4, k, p, q);
        let eplan = desc.plan();
        let micro = MicroTile { jb: 8, kb: 16 };

        let arm = PopcntArm::detect();
        let y = apmm_exec(&desc, &w, &x0, eplan, None, micro, arm);
        assert!(y.is_empty(), "m×0 product must be empty");

        let w_sums = weight_row_sums(&w, eplan);
        let mut col_sums = vec![1i32; 3]; // stale state must be cleared
        let mut out = vec![7i32; 5];
        apmm_exec_seq(
            &desc,
            &w,
            &x0,
            eplan,
            &w_sums,
            micro,
            arm,
            &mut col_sums,
            &mut out,
        );
        assert!(out.is_empty());
        assert!(col_sums.is_empty());
    }

    #[test]
    fn every_micro_tile_is_bit_identical() {
        let mut seed = 43;
        let (m, n, k, p, q) = (9, 13, 310, 2, 3);
        let wc = rand_codes(m * k, p, &mut seed);
        let xc = rand_codes(n * k, q, &mut seed);
        let w = BitPlanes::from_codes(&wc, m, k, p, Encoding::ZeroOne);
        let x = BitPlanes::from_codes(&xc, n, k, q, Encoding::ZeroOne);
        let desc = ApmmDesc::unsigned(m, n, k, p, q);
        let want = decoded_reference(&w, &x);
        for jb in [1usize, 2, 3, 8] {
            for kb in [1usize, 4, 64] {
                let got = apmm_cpu_with_micro(&desc, &w, &x, desc.plan(), MicroTile { jb, kb });
                assert_eq!(got, want, "jb={jb} kb={kb}");
            }
        }
    }

    #[test]
    fn every_available_arm_is_bit_identical() {
        let mut seed = 47;
        let (m, n, k, p, q) = (11, 17, 290, 3, 2);
        let w = BitPlanes::from_codes(&rand_codes(m * k, p, &mut seed), m, k, p, Encoding::ZeroOne);
        let x = BitPlanes::from_codes(&rand_codes(n * k, q, &mut seed), n, k, q, Encoding::ZeroOne);
        let desc = ApmmDesc::unsigned(m, n, k, p, q);
        let want = decoded_reference(&w, &x);
        for arm in PopcntArm::ALL {
            let got = apmm_cpu_tuned(&desc, &w, &x, desc.plan(), MicroTile { jb: 4, kb: 16 }, arm);
            assert_eq!(got, want, "{arm:?}");
        }
    }

    #[test]
    fn ad_hoc_entry_point_reuses_the_shape_keyed_memo() {
        // Satellite contract: `apmm_cpu` must not re-run tile selection on
        // every call — the first call per shape selects (and, in measured
        // mode, benches) once; repeats move neither counter. The shape is
        // unique to this test so the first call is a guaranteed memo miss.
        let mut seed = 53;
        let (m, n, k, p, q) = (6, 19, 331, 2, 2);
        let w = BitPlanes::from_codes(&rand_codes(m * k, p, &mut seed), m, k, p, Encoding::ZeroOne);
        let x = BitPlanes::from_codes(&rand_codes(n * k, q, &mut seed), n, k, q, Encoding::ZeroOne);
        let desc = ApmmDesc::unsigned(m, n, k, p, q);

        let s = crate::stats::scope();
        let y1 = apmm_cpu(&desc, &w, &x);
        assert_eq!(s.micro_tunes(), 1, "first call per shape selects once");
        assert!(s.micro_benches() <= 1);
        let (tunes, benches) = (s.micro_tunes(), s.micro_benches());
        let y2 = apmm_cpu(&desc, &w, &x);
        let y3 = apmm_cpu(&desc, &w, &x);
        assert_eq!(
            (s.micro_tunes(), s.micro_benches()),
            (tunes, benches),
            "repeat calls must be memo hits"
        );
        assert_eq!(y1, y2);
        assert_eq!(y1, y3);
    }

    #[test]
    fn agrees_with_fragment_template() {
        let mut seed = 23;
        let (m, n, k, p, q) = (17, 15, 260, 2, 3);
        let w = BitPlanes::from_codes(&rand_codes(m * k, p, &mut seed), m, k, p, Encoding::ZeroOne);
        let x = BitPlanes::from_codes(&rand_codes(n * k, q, &mut seed), n, k, q, Encoding::ZeroOne);
        let desc = ApmmDesc::unsigned(m, n, k, p, q);
        assert_eq!(apmm_cpu(&desc, &w, &x), crate::emulate::ap_bit_mm(&w, &x));
    }
}
