//! Tile configuration for the APMM / APConv kernels.

/// Block/warp tiling of the *batched* output space.
///
/// Following §4.1(a), the `p·q` one-bit plane products are virtually batched
/// into one large BMMA over a `pM × qN` output space. A thread block owns a
/// `bm × bn` tile of that space; with the interleaved batch mapping
/// (batched row `r` ↦ actual row `r / p`, weight plane `r % p`; batched
/// column `c` ↦ actual column `c / q`, activation plane `c % q`) a block
/// co-locates **all** plane partials of its outputs, so the bit combination
/// reduces entirely in shared memory — the semantic-aware workload
/// allocation of §4.1(b).
///
/// Warp tiling follows the paper's empirical best (§4.3): 8 warps per block
/// in a 4×2 arrangement, `wm = bm/4`, `wn = bn/2`, `wk = bk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Block tile rows in the batched (`p·M`) space.
    pub bm: usize,
    /// Block tile columns in the batched (`q·N`) space.
    pub bn: usize,
    /// K-dimension tile in bits; fixed to 128 by default (§4.3.1 observes CI
    /// is independent of `bk`, so the smallest fragment-aligned value frees
    /// shared memory for larger `bm`/`bn`).
    pub bk: usize,
}

impl TileConfig {
    /// Warps per block (4 × 2 arrangement, §4.3).
    pub const WARPS: u32 = 8;

    /// The paper's default `bk`.
    pub const DEFAULT_BK: usize = 128;

    /// Construct with the default `bk = 128`.
    pub fn new(bm: usize, bn: usize) -> Self {
        TileConfig {
            bm,
            bn,
            bk: Self::DEFAULT_BK,
        }
    }

    /// Warp tile rows (`wm = bm / 4`).
    #[inline]
    pub fn wm(&self) -> usize {
        (self.bm / 4).max(8)
    }

    /// Warp tile columns (`wn = bn / 2`).
    #[inline]
    pub fn wn(&self) -> usize {
        (self.bn / 2).max(8)
    }

    /// Shared memory claimed per block: double-buffered weight + feature
    /// tiles (bits → bytes) plus the i32 reduction staging buffer.
    pub fn shmem_bytes(&self) -> usize {
        let tiles = 2 * (self.bm * self.bk + self.bn * self.bk) / 8;
        let reduce = self.bm * self.bn * 4 / 8; // staged in chunks of bm*bn/8
        tiles + reduce
    }

    /// Blocks in the grid for a batched `pM × qN` output space.
    pub fn grid_blocks(&self, batched_m: usize, batched_n: usize) -> usize {
        batched_m.div_ceil(self.bm) * batched_n.div_ceil(self.bn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_tiles_follow_paper_split() {
        let t = TileConfig::new(64, 64);
        assert_eq!(t.wm(), 16);
        assert_eq!(t.wn(), 32);
        assert_eq!(t.bk, 128);
    }

    #[test]
    fn warp_tiles_clamped_to_fragment() {
        let t = TileConfig::new(16, 16);
        assert_eq!(t.wm(), 8); // 16/4 = 4 < 8 clamps up
        assert_eq!(t.wn(), 8);
    }

    #[test]
    fn shmem_accounting() {
        let t = TileConfig::new(64, 64);
        // 2 * (64*128 + 64*128)/8 = 4096 bytes tiles + 2048 reduce.
        assert_eq!(t.shmem_bytes(), 4096 + 2048);
    }

    #[test]
    fn grid_rounds_up() {
        let t = TileConfig::new(32, 64);
        assert_eq!(t.grid_blocks(64, 128), 2 * 2);
        assert_eq!(t.grid_blocks(65, 129), 3 * 3);
        assert_eq!(t.grid_blocks(1, 1), 1);
    }
}
