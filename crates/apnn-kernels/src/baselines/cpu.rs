//! Functional CPU baseline kernels.
//!
//! Real, multithreaded implementations of the dense int8 and fp32 GEMMs that
//! the paper's whole-network baselines run. Used by the Criterion benches
//! (wall-clock comparison against the bit-serial APMM engine) and as the
//! float oracle of the NN test-suite.

use rayon::prelude::*;

/// `Y[m×n] = A[m×k] · Bᵀ[n×k]` over int8 operands, i32 accumulation — the
/// cublas-int8-style product (B stored N×K like every kernel here).
pub fn gemm_i8(a: &[i8], b: &[i8], m: usize, n: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    let mut y = vec![0i32; m * n];
    y.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, out) in row.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for kk in 0..k {
                acc += arow[kk] as i32 * brow[kk] as i32;
            }
            *out = acc;
        }
    });
    y
}

/// `Y[m×n] = A[m×k] · Bᵀ[n×k]` over f32.
pub fn gemm_f32(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    let mut y = vec![0f32; m * n];
    y.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, out) in row.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0f32;
            for kk in 0..k {
                acc += arow[kk] * brow[kk];
            }
            *out = acc;
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_gemm_matches_reference() {
        let (m, n, k) = (3, 4, 5);
        let a: Vec<i8> = (0..m * k).map(|i| (i as i8) - 7).collect();
        let b: Vec<i8> = (0..n * k).map(|i| (i as i8) - 9).collect();
        let got = gemm_i8(&a, &b, m, n, k);
        let a32: Vec<i32> = a.iter().map(|&v| v as i32).collect();
        let b32: Vec<i32> = b.iter().map(|&v| v as i32).collect();
        assert_eq!(got, crate::reference::gemm_i32(&a32, &b32, m, n, k));
    }

    #[test]
    fn f32_gemm_identity() {
        // 2x2 identity times arbitrary B.
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 5.0, 7.0, 11.0];
        let y = gemm_f32(&a, &b, 2, 2, 2);
        assert_eq!(y, vec![3.0, 7.0, 5.0, 11.0]);
    }

    #[test]
    fn i8_saturating_ranges_accumulate_in_i32() {
        // 127*127 * k fits i32 for k up to ~100k.
        let k = 1000;
        let a = vec![127i8; k];
        let b = vec![127i8; k];
        let y = gemm_i8(&a, &b, 1, 1, k);
        assert_eq!(y[0], 127 * 127 * k as i32);
    }
}
