//! Baseline kernels: cutlass/cublas-like fixed-tile GEMM and convolution.
//!
//! The paper compares APMM/APConv against NVIDIA library kernels at int1,
//! int4 and int8 (plus fp16/fp32 whole-network baselines). Those libraries
//! are closed/CUDA-only, so per the DESIGN.md substitution rule we model
//! them as fixed-tile kernels on the same simulator, with per-kind
//! efficiency constants calibrated against the paper's own measured ratios
//! (§6.1.1 reports cutlass-int1 ≈ 5.9× cublas-int8 at saturation on the
//! RTX 3090; the constants below reproduce that).
//!
//! Functional CPU counterparts (int8/f32 GEMM) live in [`cpu`] and are used
//! by the Criterion benches and the NN float/int8 oracles.

pub mod conv;
pub mod cpu;
pub mod gemm;

use apnn_sim::Precision;

/// Kernel efficiency of the prior-work binary tensor-core kernels
/// (BSTC \[22\] / TCBNN \[25\]) that the paper's BNN baseline runs: fixed small
/// tiles, no virtual batching, un-fused element-wise layers. Fig. 12 shows
/// APMM-w1a1 ≈ 1.35× faster than such kernels at equal precision;
/// `0.82 / 1.35 ≈ 0.61`.
pub const BNN_KERNEL_EFFICIENCY: f64 = 0.61;

/// Which library kernel is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// CUTLASS b1 (XOR) tensor-core GEMM/conv.
    CutlassInt1,
    /// CUTLASS int4 tensor-core GEMM/conv.
    CutlassInt4,
    /// CUTLASS int8 tensor-core GEMM/conv.
    CutlassInt8,
    /// cuBLAS int8 tensor-core GEMM (`cublasGemmEx`).
    CublasInt8,
    /// CUTLASS fp16 tensor-core GEMM/conv.
    CutlassFp16,
    /// CUTLASS fp32 CUDA-core GEMM/conv.
    CutlassFp32,
}

impl BaselineKind {
    /// Matrix-pipeline precision.
    pub fn precision(self) -> Precision {
        match self {
            BaselineKind::CutlassInt1 => Precision::Int1,
            BaselineKind::CutlassInt4 => Precision::Int4,
            BaselineKind::CutlassInt8 | BaselineKind::CublasInt8 => Precision::Int8,
            BaselineKind::CutlassFp16 => Precision::Fp16,
            BaselineKind::CutlassFp32 => Precision::Fp32,
        }
    }

    /// Element width in bits.
    pub fn bits(self) -> u32 {
        self.precision().bits()
    }

    /// Fraction of hardware peak a fully occupied SM reaches with this
    /// kernel family. Calibration (DESIGN.md §7):
    /// * `CublasInt8 = 0.80` — cublas IMMA kernels are near-peak.
    /// * `CutlassInt1 = 0.59` — chosen so saturated int1/int8 = 8·0.59/0.80
    ///   = 5.9×, the ratio the paper measures on the RTX 3090 (§6.1.1).
    /// * `CutlassInt4 = 0.55`, `CutlassInt8 = 0.72` — CUTLASS sub-byte
    ///   kernels trail cublas (consistent with the paper's Figs. 5/7).
    /// * fp16/fp32 near-peak for the large dense layers they run.
    pub fn efficiency(self) -> f64 {
        match self {
            BaselineKind::CutlassInt1 => 0.59,
            BaselineKind::CutlassInt4 => 0.55,
            BaselineKind::CutlassInt8 => 0.72,
            BaselineKind::CublasInt8 => 0.80,
            BaselineKind::CutlassFp16 => 0.78,
            BaselineKind::CutlassFp32 => 0.85,
        }
    }

    /// Fixed threadblock tile `(tm, tn)` in elements — the library default
    /// for large GEMMs (128×128), which is exactly what hurts them on the
    /// small NN workloads the paper targets (TLP collapse, §4.3).
    pub fn tile(self) -> (usize, usize) {
        (128, 128)
    }

    /// K-dimension tile in elements per main-loop step.
    pub fn k_tile(self) -> usize {
        match self {
            // b1 kernels step 512 bits per stage.
            BaselineKind::CutlassInt1 => 512,
            BaselineKind::CutlassInt4 => 128,
            BaselineKind::CutlassInt8 | BaselineKind::CublasInt8 => 64,
            BaselineKind::CutlassFp16 => 32,
            BaselineKind::CutlassFp32 => 16,
        }
    }

    /// Display name matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::CutlassInt1 => "cutlass-int1",
            BaselineKind::CutlassInt4 => "cutlass-int4",
            BaselineKind::CutlassInt8 => "cutlass-int8",
            BaselineKind::CublasInt8 => "cublas-int8",
            BaselineKind::CutlassFp16 => "cutlass-fp16",
            BaselineKind::CutlassFp32 => "cutlass-fp32",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_paper_int1_int8_ratio() {
        // Saturated throughput ratio = (peak ratio) × (efficiency ratio).
        let spec = apnn_sim::GpuSpec::rtx3090();
        let int1 = spec.mac_per_cycle_sm(Precision::Int1) * BaselineKind::CutlassInt1.efficiency();
        let int8 = spec.mac_per_cycle_sm(Precision::Int8) * BaselineKind::CublasInt8.efficiency();
        let ratio = int1 / int8;
        assert!((ratio - 5.9).abs() < 0.05, "got {ratio}");
    }

    #[test]
    fn bits_follow_precision() {
        assert_eq!(BaselineKind::CutlassInt1.bits(), 1);
        assert_eq!(BaselineKind::CutlassInt4.bits(), 4);
        assert_eq!(BaselineKind::CublasInt8.bits(), 8);
        assert_eq!(BaselineKind::CutlassFp32.bits(), 32);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BaselineKind::CutlassInt4.label(), "cutlass-int4");
    }
}
