//! Simulated library GEMM kernels (cutlass/cublas-like).

use apnn_sim::{Counters, GpuSpec, KernelConfig, KernelReport};

use super::BaselineKind;

/// Launch configuration of a fixed-tile library GEMM.
pub fn kernel_config(kind: BaselineKind, m: usize, n: usize) -> KernelConfig {
    let (tm, tn) = kind.tile();
    let kt = kind.k_tile();
    let bits = kind.bits() as usize;
    KernelConfig {
        grid_blocks: m.div_ceil(tm) * n.div_ceil(tn),
        warps_per_block: 8,
        // Double-buffered A and B tiles.
        shmem_per_block: 2 * (tm + tn) * kt * bits / 8,
        regs_per_thread: 64,
        precision: kind.precision(),
        efficiency: kind.efficiency(),
    }
}

/// Simulated report for `Y[m×n] = A[m×k]·B[k×n]` with 32-bit output.
///
/// Tiles are *padded*: a library kernel executes full 128×128 tiles even
/// when `m < 128`, wasting tensor-core work — the effect that makes the
/// paper's small-batch FC layers so much faster under APMM (Table 4).
///
/// cuBLAS additionally applies **split-K** when the output grid alone cannot
/// occupy the machine (standard for `cublasGemmEx` on small-M GEMMs): the K
/// dimension is sliced across extra blocks and partial products are reduced
/// through global memory. This is what keeps cublas-int8 competitive at
/// `64×1024×1024` and produces the paper's large-size crossover against the
/// high-bit emulations (§6.1.1, Fig. 5b).
#[allow(clippy::field_reassign_with_default)] // counters accumulate in dependency order
pub fn gemm_report(
    kind: BaselineKind,
    m: usize,
    n: usize,
    k: usize,
    spec: &GpuSpec,
) -> KernelReport {
    let mut cfg = kernel_config(kind, m, n);
    let (tm, tn) = kind.tile();
    let kt = kind.k_tile();
    let bits = kind.bits() as u64;
    let k_steps = k.div_ceil(kt) as u64;

    let grid_m = m.div_ceil(tm) as u64;
    let grid_n = n.div_ceil(tn) as u64;
    let base_grid = grid_m * grid_n;

    // Split-K factor (cublas only): fill about half the SMs.
    let splits = if kind == BaselineKind::CublasInt8 {
        ((spec.num_sms as u64 / 2) / base_grid.max(1)).clamp(1, k_steps)
    } else {
        1
    };
    let block_k_steps = k_steps.div_ceil(splits);
    let grid = base_grid * splits;
    cfg.grid_blocks = grid as usize;

    let a_tile_bytes = (tm * kt) as u64 * bits / 8;
    let b_tile_bytes = (tn * kt) as u64 * bits / 8;

    let mut c = Counters::default();
    c.tc_macs = grid * (tm * tn) as u64 * block_k_steps * kt as u64;
    c.global_load_bytes = grid * block_k_steps * (a_tile_bytes + b_tile_bytes);
    // First-touch traffic reaches DRAM; tile re-loads hit L2.
    c.global_sectors = (grid_m * splits * block_k_steps * a_tile_bytes).div_ceil(32)
        + (grid_n * splits * block_k_steps * b_tile_bytes).div_ceil(32);
    c.shmem_bytes = grid * block_k_steps * (a_tile_bytes + b_tile_bytes) * 3;
    c.global_store_bytes = (m * n * 4) as u64;
    c.syncs = grid * block_k_steps;
    if splits > 1 {
        // Partial-product round trip + the reduction pass.
        let partials = splits * (m * n * 4) as u64;
        c.global_store_bytes += partials;
        c.global_load_bytes += partials;
        c.global_sectors += 2 * partials.div_ceil(32);
        c.cuda_int_ops += splits * (m * n) as u64;
    }
    c.global_sectors += ((m * n * 4) as u64).div_ceil(32);

    apnn_sim::launch::finish(spec, &cfg, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_tiles_waste_work_on_small_m() {
        let spec = GpuSpec::rtx3090();
        // M=64 runs a full 128-row tile: same MACs as M=128.
        let small = gemm_report(BaselineKind::CutlassInt4, 64, 1024, 1024, &spec);
        let full = gemm_report(BaselineKind::CutlassInt4, 128, 1024, 1024, &spec);
        assert_eq!(small.counters.tc_macs, full.counters.tc_macs);
    }

    #[test]
    fn int1_beats_int8_at_saturation() {
        let spec = GpuSpec::rtx3090();
        let (m, n, k) = (8192, 8192, 8192);
        let i1 = gemm_report(BaselineKind::CutlassInt1, m, n, k, &spec);
        let i8 = gemm_report(BaselineKind::CublasInt8, m, n, k, &spec);
        let speedup = i8.time_s() / i1.time_s();
        assert!(
            speedup > 4.5 && speedup < 6.5,
            "saturated int1/int8 speedup = {speedup}"
        );
    }

    #[test]
    fn small_grid_underutilizes() {
        let spec = GpuSpec::rtx3090();
        // 64×1024 output = 1×8 grid of 128×128 tiles → 8 blocks on 82 SMs.
        let r = gemm_report(BaselineKind::CutlassInt4, 64, 1024, 1024, &spec);
        assert_eq!(r.occupancy.waves, 1);
        assert!(r.occupancy.hide_efficiency <= 1.0);
        // The busiest SM runs one block; most SMs idle.
        assert_eq!(r.occupancy.resident_blocks_per_sm, 1);
    }

    #[test]
    fn fp32_is_much_slower_than_int8() {
        let spec = GpuSpec::rtx3090();
        let (m, n, k) = (4096, 4096, 4096);
        let f32r = gemm_report(BaselineKind::CutlassFp32, m, n, k, &spec);
        let i8r = gemm_report(BaselineKind::CublasInt8, m, n, k, &spec);
        assert!(f32r.time_s() > 5.0 * i8r.time_s());
    }
}
