//! Simulated library convolution kernels (cutlass-like implicit GEMM).

use apnn_sim::{Counters, GpuSpec, KernelConfig, KernelReport};

use super::gemm::kernel_config as gemm_config;
use super::BaselineKind;

/// Plain (precision-agnostic) convolution shape used by baselines.
#[derive(Debug, Clone, Copy)]
pub struct ConvShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub cin: usize,
    /// Input height/width (square).
    pub hw: usize,
    /// Output channels.
    pub cout: usize,
    /// Kernel size (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
}

impl ConvShape {
    /// Output spatial dimension.
    pub fn out_hw(&self) -> usize {
        (self.hw + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Implicit-GEMM dimensions `(m, n, k)`.
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        (
            self.cout,
            self.batch * self.out_hw() * self.out_hw(),
            self.cin * self.k * self.k,
        )
    }

    /// MAC count of the convolution.
    pub fn macs(&self) -> u64 {
        let (m, n, k) = self.gemm_dims();
        m as u64 * n as u64 * k as u64
    }
}

/// Simulated report of a cutlass-like implicit-GEMM convolution at a fixed
/// threadblock tile.
#[allow(clippy::field_reassign_with_default)] // counters accumulate in dependency order
fn conv_report_tiled(
    kind: BaselineKind,
    shape: &ConvShape,
    spec: &GpuSpec,
    tm: usize,
    tn: usize,
) -> KernelReport {
    let (m, n, k) = shape.gemm_dims();
    let mut cfg: KernelConfig = gemm_config(kind, m, n);
    let kt = kind.k_tile();
    let bits = kind.bits() as u64;
    cfg.grid_blocks = m.div_ceil(tm) * n.div_ceil(tn);
    cfg.shmem_per_block = 2 * (tm + tn) * kt * bits as usize / 8;
    let grid = cfg.grid_blocks as u64;
    let k_steps = k.div_ceil(kt) as u64;
    let k_padded = k_steps * kt as u64;

    let grid_m = m.div_ceil(tm) as u64;
    let grid_n = n.div_ceil(tn) as u64;
    let a_tile_bytes = (tm * kt) as u64 * bits / 8;
    let b_tile_bytes = (tn * kt) as u64 * bits / 8;

    let mut c = Counters::default();
    c.tc_macs = grid * (tm * tn) as u64 * k_padded;
    c.global_load_bytes = grid * k_steps * (a_tile_bytes + b_tile_bytes);
    c.global_sectors = (grid_m * k_steps * a_tile_bytes).div_ceil(32)
        + (grid_n * k_steps * b_tile_bytes).div_ceil(32);
    c.shmem_bytes = grid * k_steps * (a_tile_bytes + b_tile_bytes) * 3;
    c.global_store_bytes = (m * n * 4) as u64;
    c.global_sectors += c.global_store_bytes.div_ceil(32);
    c.syncs = grid * k_steps;

    apnn_sim::launch::finish(spec, &cfg, c)
}

/// Simulated report of a cutlass-like implicit-GEMM convolution.
///
/// CUTLASS ships several threadblock shapes per conv kernel and the library
/// (or its profiler) picks the fastest; we model that by evaluating the
/// standard 128×128 and 64×64 shapes and keeping the best — without
/// this, the baseline would be unrealistically crippled on the paper's
/// small conv workloads (batch 1, 16×16 maps).
pub fn conv_report(kind: BaselineKind, shape: &ConvShape, spec: &GpuSpec) -> KernelReport {
    [(128, 128), (64, 64)]
        .into_iter()
        .map(|(tm, tn)| conv_report_tiled(kind, shape, spec, tm, tn))
        .min_by(|a, b| a.time_s().partial_cmp(&b.time_s()).unwrap())
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_shape(c: usize) -> ConvShape {
        // The paper's APConv workload: input 16, filter 3, stride 1, batch 1.
        ConvShape {
            batch: 1,
            cin: c,
            hw: 16,
            cout: c,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn gemm_dims_mapping() {
        let s = fig7_shape(128);
        assert_eq!(s.out_hw(), 16);
        assert_eq!(s.gemm_dims(), (128, 256, 128 * 9));
        assert_eq!(s.macs(), 128 * 256 * 1152);
    }

    #[test]
    fn latency_grows_with_channels() {
        let spec = GpuSpec::rtx3090();
        let t128 = conv_report(BaselineKind::CutlassInt4, &fig7_shape(128), &spec).time_s();
        let t1024 = conv_report(BaselineKind::CutlassInt4, &fig7_shape(1024), &spec).time_s();
        assert!(t1024 > t128);
    }

    #[test]
    fn int4_faster_than_int8_at_scale() {
        let spec = GpuSpec::rtx3090();
        let big = ConvShape {
            batch: 32,
            cin: 512,
            hw: 32,
            cout: 512,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let t4 = conv_report(BaselineKind::CutlassInt4, &big, &spec).time_s();
        let t8 = conv_report(BaselineKind::CutlassInt8, &big, &spec).time_s();
        assert!(t4 < t8);
    }
}
