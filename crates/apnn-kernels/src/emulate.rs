//! AP-Bit operation template (paper §3.1).
//!
//! Computes `Y = W·Xᵀ` for a `p`-bit `W` (m×k) and a `q`-bit `X` (n×k,
//! stored with k contiguous, i.e. each row is a column of the logical X)
//! using only the 1-bit `bmma.8x8x128` primitive:
//!
//! 1. **Bit decomposition** — done ahead of time by [`BitPlanes`].
//! 2. **Batched tensor-core computation** — `p·q` passes of 8×8×128 `bmma`
//!    fragments accumulated over the K dimension.
//! 3. **Bit combination** — `Y = Σ_{s,t} 2^{s+t} · adjust(Y⁽ˢ'ᵗ⁾)` where
//!    `adjust` applies the encoding-case correction from [`crate::select`].
//!
//! This is the *un-tiled* form used for fragment-sized problems and as a
//! mid-level oracle; the production tiled kernel is [`crate::apmm`].

use apnn_bitpack::{BitMatrix, BitPlanes};
use apnn_sim::bmma::WORDS_PER_ROW;
use apnn_sim::{bmma_8x8x128, BMMA_K, BMMA_M, BMMA_N};

use crate::select::{adjust_partial, plan};

/// Gather an 8-row fragment of packed words starting at `row0`, zero-padding
/// rows past the end of the matrix.
fn gather_fragment(m: &BitMatrix, row0: usize, word_off: usize, out: &mut [u64]) {
    debug_assert_eq!(out.len(), BMMA_M * WORDS_PER_ROW);
    for r in 0..BMMA_M {
        let dst = &mut out[r * WORDS_PER_ROW..(r + 1) * WORDS_PER_ROW];
        if row0 + r < m.rows() {
            dst.copy_from_slice(m.row_word_slice(row0 + r, word_off, WORDS_PER_ROW));
        } else {
            dst.fill(0);
        }
    }
}

/// Arbitrary-precision small-matrix multiply on the bmma primitive.
///
/// Returns the row-major `m×n` i32 product of the *decoded* operands
/// (encodings applied). Panics if the operands disagree on padded width.
pub fn ap_bit_mm(w: &BitPlanes, x: &BitPlanes) -> Vec<i32> {
    let (m, n) = (w.rows(), x.rows());
    let k = w.cols();
    assert_eq!(k, x.cols(), "operands must share the K dimension");

    let eplan = plan(w.encoding(), x.encoding());
    let k_frags = w.plane(0).padded_cols() / BMMA_K;
    assert_eq!(x.plane(0).padded_cols(), w.plane(0).padded_cols());

    // Correction vectors (bit sums per plane).
    let w_row_sums: Vec<Vec<i32>> = (0..w.bits()).map(|s| w.plane(s).row_sums()).collect();
    let x_col_sums: Vec<Vec<i32>> = (0..x.bits())
        .map(|t| x.plane(t).row_sums()) // x rows are logical columns
        .collect();

    let mut y = vec![0i32; m * n];
    let mut a_frag = vec![0u64; BMMA_M * WORDS_PER_ROW];
    let mut b_frag = vec![0u64; BMMA_N * WORDS_PER_ROW];

    for s in 0..w.bits() {
        for t in 0..x.bits() {
            let weight = 1i32 << (s + t);
            for fi in 0..m.div_ceil(BMMA_M) {
                for fj in 0..n.div_ceil(BMMA_N) {
                    // Accumulate popcounts over the K fragments — exactly the
                    // hardware behaviour of chained bmma accumulation.
                    let mut c = [0i32; BMMA_M * BMMA_N];
                    for fk in 0..k_frags {
                        gather_fragment(w.plane(s), fi * BMMA_M, fk * WORDS_PER_ROW, &mut a_frag);
                        gather_fragment(x.plane(t), fj * BMMA_N, fk * WORDS_PER_ROW, &mut b_frag);
                        bmma_8x8x128(&a_frag, &b_frag, &mut c, eplan.op);
                    }
                    // Bit combination with the encoding-case adjustment.
                    for i in 0..BMMA_M {
                        let row = fi * BMMA_M + i;
                        if row >= m {
                            break;
                        }
                        for j in 0..BMMA_N {
                            let col = fj * BMMA_N + j;
                            if col >= n {
                                break;
                            }
                            let adj = adjust_partial(
                                eplan.case,
                                c[i * BMMA_N + j],
                                k as i32,
                                w_row_sums[s as usize][row],
                                x_col_sums[t as usize][col],
                            );
                            y[row * n + col] += weight * adj;
                        }
                    }
                }
            }
        }
    }
    y
}

/// Scalar oracle for a single arbitrary-precision dot product — the
/// "sequence of 1-bit scalar digits" identity of §3.1 applied directly.
pub fn ap_scalar_dot(w_vals: &[i32], x_vals: &[i32]) -> i32 {
    debug_assert_eq!(w_vals.len(), x_vals.len());
    w_vals.iter().zip(x_vals).map(|(a, b)| a * b).sum()
}

/// Number of bmma instructions the template issues for an `m×n×k` problem at
/// `p×q` bits — the §3.1 cost-analysis quantity (`p·q` passes over the
/// fragment grid).
pub fn bmma_count(m: usize, n: usize, k_padded: usize, p: u32, q: u32) -> u64 {
    let frags = m.div_ceil(BMMA_M) as u64 * n.div_ceil(BMMA_N) as u64 * (k_padded / BMMA_K) as u64;
    frags * p as u64 * q as u64
}

/// Degenerate-case helper used by tests: decode planes and multiply via the
/// naive reference.
pub fn decoded_reference(w: &BitPlanes, x: &BitPlanes) -> Vec<i32> {
    let wv = w.values();
    let xv = x.values();
    crate::reference::gemm_i32(&wv, &xv, w.rows(), x.rows(), w.cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apnn_bitpack::Encoding;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn random_codes(len: usize, bits: u32, seed: &mut u64) -> Vec<u32> {
        (0..len).map(|_| (lcg(seed) as u32) % (1 << bits)).collect()
    }

    #[test]
    fn case1_unsigned_matches_reference() {
        let mut seed = 42;
        for (m, n, k, p, q) in [(8, 8, 128, 1, 2), (16, 8, 130, 2, 3), (5, 9, 300, 3, 2)] {
            let wc = random_codes(m * k, p, &mut seed);
            let xc = random_codes(n * k, q, &mut seed);
            let w = BitPlanes::from_codes(&wc, m, k, p, Encoding::ZeroOne);
            let x = BitPlanes::from_codes(&xc, n, k, q, Encoding::ZeroOne);
            assert_eq!(
                ap_bit_mm(&w, &x),
                decoded_reference(&w, &x),
                "m{m} n{n} k{k}"
            );
        }
    }

    #[test]
    fn case2_signed_binary_matches_reference() {
        let mut seed = 7;
        for (m, n, k) in [(8, 8, 128), (12, 20, 77), (3, 3, 500)] {
            let wv: Vec<i32> = (0..m * k)
                .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
                .collect();
            let xv: Vec<i32> = (0..n * k)
                .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
                .collect();
            let w = BitPlanes::from_signed_binary(&wv, m, k);
            let x = BitPlanes::from_signed_binary(&xv, n, k);
            assert_eq!(
                ap_bit_mm(&w, &x),
                decoded_reference(&w, &x),
                "m{m} n{n} k{k}"
            );
        }
    }

    #[test]
    fn case3_mixed_matches_reference() {
        let mut seed = 99;
        for (m, n, k, q) in [(8, 8, 128), (10, 14, 200), (4, 4, 64)]
            .into_iter()
            .zip([2u32, 3, 8])
            .map(|((m, n, k), q)| (m, n, k, q))
        {
            let wv: Vec<i32> = (0..m * k)
                .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
                .collect();
            let xc = random_codes(n * k, q, &mut seed);
            let w = BitPlanes::from_signed_binary(&wv, m, k);
            let x = BitPlanes::from_codes(&xc, n, k, q, Encoding::ZeroOne);
            assert_eq!(ap_bit_mm(&w, &x), decoded_reference(&w, &x), "w1a{q}");
        }
    }

    #[test]
    fn case3_mirrored_matches_reference() {
        let mut seed = 1234;
        let (m, n, k, p) = (9, 7, 150, 3);
        let wc = random_codes(m * k, p, &mut seed);
        let xv: Vec<i32> = (0..n * k)
            .map(|_| if lcg(&mut seed) & 1 == 0 { -1 } else { 1 })
            .collect();
        let w = BitPlanes::from_codes(&wc, m, k, p, Encoding::ZeroOne);
        let x = BitPlanes::from_signed_binary(&xv, n, k);
        assert_eq!(ap_bit_mm(&w, &x), decoded_reference(&w, &x));
    }

    #[test]
    fn paper_example_w1a2() {
        // The §3.1 walkthrough: 1-bit weights, 2-bit features, both unsigned.
        // wx = OP(w, x1)*2 + OP(w, x0).
        let w = BitPlanes::from_codes(&[1, 1, 0, 1], 1, 4, 1, Encoding::ZeroOne);
        let x = BitPlanes::from_codes(&[3, 2, 1, 0], 1, 4, 2, Encoding::ZeroOne);
        // w·x = 1*3 + 1*2 + 0*1 + 1*0 = 5.
        assert_eq!(ap_bit_mm(&w, &x), vec![5]);
    }

    #[test]
    fn bmma_count_formula() {
        // 8×8×128 at 1×1 bits = exactly one bmma.
        assert_eq!(bmma_count(8, 8, 128, 1, 1), 1);
        // Scaling in every dimension.
        assert_eq!(bmma_count(16, 8, 128, 1, 1), 2);
        assert_eq!(bmma_count(8, 8, 256, 1, 1), 2);
        assert_eq!(bmma_count(8, 8, 128, 2, 3), 6);
        // Ragged shapes round up.
        assert_eq!(bmma_count(9, 9, 128, 1, 1), 4);
    }

    #[test]
    fn scalar_oracle() {
        assert_eq!(ap_scalar_dot(&[1, -1, 2], &[3, 4, 5]), 3 - 4 + 10);
    }
}
