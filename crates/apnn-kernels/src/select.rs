//! Data-adaptive operator selection (paper §3.2).
//!
//! The 1-bit tensor-core primitive only offers `XOR` and `AND` followed by a
//! popcount, but the bits of a quantized operand may encode `{0,1}` or
//! `{−1,+1}`. The paper distinguishes three cases; this module maps a pair
//! of operand [`Encoding`]s to an [`EmulationPlan`] and provides the exact
//! per-partial correction arithmetic each case requires.

use apnn_bitpack::Encoding;
use apnn_sim::BmmaOp;

/// The three emulation cases of §3.2 (plus the mirrored Case III), and
/// their XOR-only derivations for Turing-class hardware.
///
/// Turing tensor cores expose only the XOR `bmma` (§2.3 — Ampere added
/// AND). The identity `popc(a & b) = (popc(a) + popc(b) − popc(a ⊕ b))/2`
/// turns every AND-based case into an XOR one, using exactly the row/column
/// bit sums the corrections already carry. The `XorDerived*` variants below
/// are those rewrites (after algebraic simplification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmulationCase {
    /// Case I — both operands encode `{0,1}`: `y = popc(AND(w, x))`.
    AndUnsigned,
    /// Case II — both operands encode `{−1,+1}`:
    /// `y = K − 2·popc(XOR(w, x))` over `K` valid positions.
    XorSignedBinary,
    /// Case III — weights `{−1,+1}`, activations `{0,1}`:
    /// `Ŵ = (W + J)/2` (which is exactly the stored bit), compute with `AND`,
    /// recover `WX = 2·ŴX − J·X` using the activation column sums.
    AndWeightTransformed,
    /// Mirror of Case III — weights `{0,1}`, activations `{−1,+1}`:
    /// `WX = 2·W X̂ − W·J` using the weight row sums.
    AndActivationTransformed,
    /// Case I on XOR-only hardware:
    /// `y = (Σw + Σx − popc(XOR))/2`.
    XorDerivedUnsigned,
    /// Case III on XOR-only hardware: substituting the AND identity into
    /// `2·ŴX − J·X` collapses to `y = Σŵ − popc(XOR)`.
    XorDerivedWeightTransformed,
    /// Mirrored Case III on XOR-only hardware: `y = Σx̂ − popc(XOR)`.
    XorDerivedActivationTransformed,
}

/// The operator + correction recipe for a pair of encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmulationPlan {
    /// Boolean tensor-core op to issue.
    pub op: BmmaOp,
    /// Correction case.
    pub case: EmulationCase,
}

/// Select the emulation plan for operand encodings `(w, x)` on Ampere-class
/// hardware (both XOR and AND available).
pub fn plan(w: Encoding, x: Encoding) -> EmulationPlan {
    use Encoding::*;
    match (w, x) {
        (ZeroOne, ZeroOne) => EmulationPlan {
            op: BmmaOp::And,
            case: EmulationCase::AndUnsigned,
        },
        (PlusMinusOne, PlusMinusOne) => EmulationPlan {
            op: BmmaOp::Xor,
            case: EmulationCase::XorSignedBinary,
        },
        (PlusMinusOne, ZeroOne) => EmulationPlan {
            op: BmmaOp::And,
            case: EmulationCase::AndWeightTransformed,
        },
        (ZeroOne, PlusMinusOne) => EmulationPlan {
            op: BmmaOp::And,
            case: EmulationCase::AndActivationTransformed,
        },
    }
}

/// Select the emulation plan for a device that only offers the XOR `bmma`
/// (Turing). Every case runs, at the cost of both correction vectors.
pub fn plan_xor_only(w: Encoding, x: Encoding) -> EmulationPlan {
    use Encoding::*;
    let case = match (w, x) {
        (ZeroOne, ZeroOne) => EmulationCase::XorDerivedUnsigned,
        (PlusMinusOne, PlusMinusOne) => EmulationCase::XorSignedBinary,
        (PlusMinusOne, ZeroOne) => EmulationCase::XorDerivedWeightTransformed,
        (ZeroOne, PlusMinusOne) => EmulationCase::XorDerivedActivationTransformed,
    };
    EmulationPlan {
        op: BmmaOp::Xor,
        case,
    }
}

/// Select a plan respecting device capability (`supports_and` = false for
/// Turing-class tensor cores).
pub fn plan_for_device(w: Encoding, x: Encoding, supports_and: bool) -> EmulationPlan {
    if supports_and {
        plan(w, x)
    } else {
        plan_xor_only(w, x)
    }
}

/// Turn a raw popcount partial into the arithmetic partial product for one
/// `(s, t)` plane pair.
///
/// * `popc` — the raw tensor-core popcount output.
/// * `k_valid` — number of *logical* (unpadded) positions in the reduction.
/// * `w_row_sum` — Σ of the weight-plane bits in this row (`W⁽ˢ⁾·J`), used by
///   [`EmulationCase::AndActivationTransformed`].
/// * `x_col_sum` — Σ of the activation-plane bits in this column (`J·X⁽ᵗ⁾`),
///   used by [`EmulationCase::AndWeightTransformed`].
#[inline]
pub fn adjust_partial(
    case: EmulationCase,
    popc: i32,
    k_valid: i32,
    w_row_sum: i32,
    x_col_sum: i32,
) -> i32 {
    match case {
        EmulationCase::AndUnsigned => popc,
        EmulationCase::XorSignedBinary => k_valid - 2 * popc,
        EmulationCase::AndWeightTransformed => 2 * popc - x_col_sum,
        EmulationCase::AndActivationTransformed => 2 * popc - w_row_sum,
        EmulationCase::XorDerivedUnsigned => {
            debug_assert!((w_row_sum + x_col_sum - popc) % 2 == 0);
            (w_row_sum + x_col_sum - popc) / 2
        }
        EmulationCase::XorDerivedWeightTransformed => w_row_sum - popc,
        EmulationCase::XorDerivedActivationTransformed => x_col_sum - popc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_selection_matches_paper() {
        assert_eq!(
            plan(Encoding::ZeroOne, Encoding::ZeroOne),
            EmulationPlan {
                op: BmmaOp::And,
                case: EmulationCase::AndUnsigned
            }
        );
        assert_eq!(
            plan(Encoding::PlusMinusOne, Encoding::PlusMinusOne),
            EmulationPlan {
                op: BmmaOp::Xor,
                case: EmulationCase::XorSignedBinary
            }
        );
        assert_eq!(
            plan(Encoding::PlusMinusOne, Encoding::ZeroOne),
            EmulationPlan {
                op: BmmaOp::And,
                case: EmulationCase::AndWeightTransformed
            }
        );
        assert_eq!(
            plan(Encoding::ZeroOne, Encoding::PlusMinusOne),
            EmulationPlan {
                op: BmmaOp::And,
                case: EmulationCase::AndActivationTransformed
            }
        );
    }

    #[test]
    fn paper_worked_examples() {
        // Case I: W = [0,1], X = [1,1] -> popc(AND) = 1, y = 1.
        assert_eq!(adjust_partial(EmulationCase::AndUnsigned, 1, 2, 0, 0), 1);
        // Case II: W = [-1,1], X = [1,1] -> map -1 to 0, popc(XOR([0,1],[1,1]))
        // = popc([1,0]) = 1, y = 2 - 2*1 = 0.
        assert_eq!(
            adjust_partial(EmulationCase::XorSignedBinary, 1, 2, 0, 0),
            0
        );
        // Case III: W = [-1,1], X = [1,0]. Ŵ = [0,1]; popc(AND([0,1],[1,0]))
        // = 0; J·X = 1; y = 2*0 - 1 = -1. And indeed W·X = -1.
        assert_eq!(
            adjust_partial(EmulationCase::AndWeightTransformed, 0, 2, 0, 1),
            -1
        );
    }

    #[test]
    fn mirrored_case_three() {
        // W = [1,0] (0/1), X = [-1,1] -> X̂ = [0,1]; popc(AND([1,0],[0,1]))=0;
        // W·J = 1; y = 2*0 - 1 = -1. Direct: 1*(-1) + 0*1 = -1. ✓
        assert_eq!(
            adjust_partial(EmulationCase::AndActivationTransformed, 0, 2, 1, 0),
            -1
        );
    }

    #[test]
    fn xor_only_plans_always_pick_xor() {
        use Encoding::*;
        for w in [ZeroOne, PlusMinusOne] {
            for x in [ZeroOne, PlusMinusOne] {
                assert_eq!(plan_xor_only(w, x).op, BmmaOp::Xor);
                assert_eq!(plan_for_device(w, x, false), plan_xor_only(w, x));
                assert_eq!(plan_for_device(w, x, true), plan(w, x));
            }
        }
    }

    #[test]
    fn xor_derived_cases_equal_and_cases_scalarwise() {
        // Over every 1-bit pair, the XOR-derived correction must reproduce
        // the AND-based result given the same row/col bit sums.
        for wb in [0i32, 1] {
            for xb in [0i32, 1] {
                let xor = wb ^ xb;
                let and = wb & xb;
                // Case I.
                assert_eq!(
                    adjust_partial(EmulationCase::XorDerivedUnsigned, xor, 1, wb, xb),
                    adjust_partial(EmulationCase::AndUnsigned, and, 1, wb, xb),
                );
                // Case III (w stored bit IS ŵ).
                assert_eq!(
                    adjust_partial(EmulationCase::XorDerivedWeightTransformed, xor, 1, wb, xb),
                    adjust_partial(EmulationCase::AndWeightTransformed, and, 1, wb, xb),
                );
                // Mirrored Case III.
                assert_eq!(
                    adjust_partial(
                        EmulationCase::XorDerivedActivationTransformed,
                        xor,
                        1,
                        wb,
                        xb
                    ),
                    adjust_partial(EmulationCase::AndActivationTransformed, and, 1, wb, xb),
                );
            }
        }
    }

    #[test]
    fn exhaustive_scalar_pairs() {
        // Over every 1-bit pair, each case's correction reproduces the
        // arithmetic product of the encoded values.
        for wb in [0i32, 1] {
            for xb in [0i32, 1] {
                // Case I.
                let y = adjust_partial(EmulationCase::AndUnsigned, wb & xb, 1, wb, xb);
                assert_eq!(y, wb * xb);
                // Case II: values 2b-1.
                let (wv, xv) = (2 * wb - 1, 2 * xb - 1);
                let y = adjust_partial(EmulationCase::XorSignedBinary, wb ^ xb, 1, 0, 0);
                assert_eq!(y, wv * xv);
                // Case III: w signed, x unsigned.
                let y = adjust_partial(EmulationCase::AndWeightTransformed, wb & xb, 1, 0, xb);
                assert_eq!(y, wv * xb);
                // Case III mirrored.
                let y = adjust_partial(EmulationCase::AndActivationTransformed, wb & xb, 1, wb, 0);
                assert_eq!(y, wb * xv);
            }
        }
    }
}
