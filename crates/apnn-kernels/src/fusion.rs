//! Fusable element-wise epilogues (paper §5.2).
//!
//! Quantization, batch normalization, and ReLU are all element-wise over the
//! i32 accumulators a GEMM/conv produces, so the paper fuses them into the
//! producing kernel: the values are transformed while still in registers and
//! only the final (possibly `q`-bit packed) result touches global memory.
//! The fused composition for a BN + ReLU + quantize chain is
//! `⌊max(bn(x) − z, 0) / s⌋` — reproduced verbatim by [`Epilogue::apply`].

/// One element-wise operation applied to a kernel's i32 accumulator.
#[derive(Debug, Clone)]
pub enum EpilogueOp {
    /// Batch normalization (Eq. 5): `(x − E[x]) / √(Var[x] + ε) · γ + β`,
    /// with per-output-channel statistics and learned parameters.
    BatchNorm {
        /// Learned scale γ per channel.
        gamma: Vec<f32>,
        /// Learned shift β per channel.
        beta: Vec<f32>,
        /// Running mean per channel.
        mean: Vec<f32>,
        /// Running variance per channel.
        var: Vec<f32>,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Per-channel affine transform `x·mul + add[channel]` — the
    /// dequantization-scale + bias fold used when lowering trained
    /// floating-point models onto the integer engine.
    Affine {
        /// Uniform multiplier (e.g. `s_w · s_x`).
        mul: f32,
        /// Per-channel additive term (bias).
        add: Vec<f32>,
    },
    /// `max(x, 0)`.
    Relu,
    /// Affine quantization to `bits`-wide unsigned codes:
    /// `⌊(x − z) / s⌋` clamped to `[0, 2^bits − 1]` (§5.2).
    Quantize {
        /// Scale `s` (must be > 0).
        scale: f32,
        /// Zero point `z`.
        zero_point: f32,
        /// Output code width.
        bits: u32,
    },
}

impl EpilogueOp {
    /// `(cuda_int_ops, cuda_flops)` cost of this op per element — fed to the
    /// simulator's CUDA-core counters.
    pub fn cost_per_element(&self) -> (u64, u64) {
        match self {
            EpilogueOp::BatchNorm { .. } => (0, 4), // sub, mul(rsqrt·γ folded), mul, add
            EpilogueOp::Affine { .. } => (0, 2),    // mul, add
            EpilogueOp::Relu => (1, 0),
            EpilogueOp::Quantize { .. } => (2, 2), // sub+mul, floor+clamp
        }
    }
}

/// An ordered chain of epilogue ops fused into a kernel.
#[derive(Debug, Clone, Default)]
pub struct Epilogue {
    ops: Vec<EpilogueOp>,
}

impl Epilogue {
    /// Empty epilogue: the kernel stores raw i32 accumulators.
    pub fn none() -> Self {
        Epilogue { ops: Vec::new() }
    }

    /// Append an op (builder style).
    pub fn then(mut self, op: EpilogueOp) -> Self {
        self.ops.push(op);
        self
    }

    /// The fused ops in application order.
    pub fn ops(&self) -> &[EpilogueOp] {
        &self.ops
    }

    /// `Some(bits)` when the chain ends in quantization — the producing
    /// kernel then emits packed `bits`-wide codes instead of i32.
    pub fn output_bits(&self) -> Option<u32> {
        match self.ops.last() {
            Some(EpilogueOp::Quantize { bits, .. }) => Some(*bits),
            _ => None,
        }
    }

    /// Apply the chain to accumulator `acc` of output channel `channel`.
    ///
    /// Returns the final value: for quantizing chains this is the unsigned
    /// code (as f32, exactly representable); otherwise the transformed value.
    pub fn apply(&self, acc: i32, channel: usize) -> f32 {
        let mut v = acc as f32;
        for op in &self.ops {
            v = match op {
                EpilogueOp::BatchNorm {
                    gamma,
                    beta,
                    mean,
                    var,
                    eps,
                } => {
                    (v - mean[channel]) / (var[channel] + eps).sqrt() * gamma[channel]
                        + beta[channel]
                }
                EpilogueOp::Affine { mul, add } => v * mul + add[channel],
                EpilogueOp::Relu => v.max(0.0),
                EpilogueOp::Quantize {
                    scale,
                    zero_point,
                    bits,
                } => {
                    debug_assert!(*scale > 0.0);
                    let q = ((v - zero_point) / scale).floor();
                    q.clamp(0.0, ((1u32 << bits) - 1) as f32)
                }
            };
        }
        v
    }

    /// Apply and return the quantized code. Panics if the chain does not end
    /// in [`EpilogueOp::Quantize`].
    pub fn apply_to_code(&self, acc: i32, channel: usize) -> u32 {
        assert!(
            self.output_bits().is_some(),
            "epilogue does not end in quantization"
        );
        self.apply(acc, channel) as u32
    }

    /// Total `(cuda_int_ops, cuda_flops)` per element.
    pub fn cost_per_element(&self) -> (u64, u64) {
        self.ops
            .iter()
            .map(EpilogueOp::cost_per_element)
            .fold((0, 0), |(ai, af), (bi, bf)| (ai + bi, af + bf))
    }

    /// Convenience: BN + ReLU + quantize — the canonical intermediate-layer
    /// chain of §5.2.
    #[allow(clippy::too_many_arguments)]
    pub fn bn_relu_quant(
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        var: Vec<f32>,
        eps: f32,
        scale: f32,
        zero_point: f32,
        bits: u32,
    ) -> Self {
        Epilogue::none()
            .then(EpilogueOp::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                eps,
            })
            .then(EpilogueOp::Relu)
            .then(EpilogueOp::Quantize {
                scale,
                zero_point,
                bits,
            })
    }

    /// Convenience: bare quantization.
    pub fn quantize(scale: f32, zero_point: f32, bits: u32) -> Self {
        Epilogue::none().then(EpilogueOp::Quantize {
            scale,
            zero_point,
            bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_epilogue_is_identity() {
        let e = Epilogue::none();
        assert_eq!(e.apply(-42, 0), -42.0);
        assert_eq!(e.output_bits(), None);
    }

    #[test]
    fn relu_clamps_negative() {
        let e = Epilogue::none().then(EpilogueOp::Relu);
        assert_eq!(e.apply(-5, 0), 0.0);
        assert_eq!(e.apply(7, 0), 7.0);
    }

    #[test]
    fn quantize_floors_and_clamps() {
        let e = Epilogue::quantize(2.0, 1.0, 2);
        // (7-1)/2 = 3 -> code 3 (max for 2 bits).
        assert_eq!(e.apply_to_code(7, 0), 3);
        // (20-1)/2 = 9.5 -> clamp to 3.
        assert_eq!(e.apply_to_code(20, 0), 3);
        // Below zero-point clamps to 0.
        assert_eq!(e.apply_to_code(-10, 0), 0);
        assert_eq!(e.output_bits(), Some(2));
    }

    #[test]
    fn fused_formula_matches_paper() {
        // ⌊max(bn(x) − z, 0)/s⌋ with bn(x) = (x−mean)/√(var+eps)·γ + β.
        let (gamma, beta, mean, var, eps) = (2.0f32, 1.0f32, 10.0f32, 4.0f32, 0.0f32);
        let (scale, z, bits) = (3.0f32, 0.5f32, 4u32);
        let e = Epilogue::bn_relu_quant(
            vec![gamma],
            vec![beta],
            vec![mean],
            vec![var],
            eps,
            scale,
            z,
            bits,
        );
        let x = 16i32;
        let bn = (x as f32 - mean) / (var + eps).sqrt() * gamma + beta; // 7.0
        let expected = ((bn - z).max(0.0) / scale).floor(); // ⌊6.5/3⌋ = 2
        assert_eq!(e.apply(x, 0), expected);
        assert_eq!(e.apply_to_code(x, 0), 2);
    }

    #[test]
    fn per_channel_bn() {
        let e = Epilogue::none().then(EpilogueOp::BatchNorm {
            gamma: vec![1.0, 2.0],
            beta: vec![0.0, 0.0],
            mean: vec![0.0, 0.0],
            var: vec![1.0, 1.0],
            eps: 0.0,
        });
        assert_eq!(e.apply(3, 0), 3.0);
        assert_eq!(e.apply(3, 1), 6.0);
    }

    #[test]
    fn cost_accumulates() {
        let e = Epilogue::bn_relu_quant(
            vec![1.0],
            vec![0.0],
            vec![0.0],
            vec![1.0],
            1e-5,
            1.0,
            0.0,
            2,
        );
        let (ints, flops) = e.cost_per_element();
        assert_eq!(ints, 3);
        assert_eq!(flops, 6);
    }
}
