//! Property-based tests for the kernel layer: autotuner contract, estimator
//! invariants, epilogue safety.

use apnn_bitpack::{BitPlanes, BitTensor4, Encoding, Layout, PopcntArm, Tensor4};
use apnn_kernels::apconv::cpu::{conv_cpu_tuned, ConvScratch};
use apnn_kernels::apconv::{ApConv, ConvDesc, ConvWeights};
use apnn_kernels::apmm::cpu::{apmm_cpu_tuned, ApmmScratch};
use apnn_kernels::apmm::{simmap, Apmm, ApmmDesc, TileConfig};
use apnn_kernels::autotune::{
    autotune, compute_intensity, thread_level_parallelism, MicroTile, TILE_CANDIDATES,
    TLP_THRESHOLD,
};
use apnn_kernels::emulate::decoded_reference;
use apnn_kernels::fusion::Epilogue;
use apnn_kernels::reference::conv2d_i32;
use apnn_kernels::select::plan_for_device;
use apnn_sim::GpuSpec;
use proptest::prelude::*;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn operand(rows: usize, cols: usize, bits: u32, signed: bool, seed: &mut u64) -> BitPlanes {
    if signed {
        let vals: Vec<i32> = (0..rows * cols)
            .map(|_| if lcg(seed) & 1 == 0 { -1 } else { 1 })
            .collect();
        BitPlanes::from_signed_binary(&vals, rows, cols)
    } else {
        let codes: Vec<u32> = (0..rows * cols)
            .map(|_| (lcg(seed) as u32) % (1 << bits))
            .collect();
        BitPlanes::from_codes(&codes, rows, cols, bits, Encoding::ZeroOne)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The §4.3.2 contract: the chosen tile is a candidate pair; if any
    /// candidate clears the TLP threshold, the chosen one clears it too and
    /// has the maximum CI among those that do; otherwise the chosen one has
    /// maximum TLP.
    #[test]
    fn autotune_respects_its_specification(
        m in 1usize..5000, n in 1usize..5000, p in 1u32..=8, q in 1u32..=8,
    ) {
        let t = autotune(m, n, 128, p, q);
        prop_assert!(TILE_CANDIDATES.contains(&t.bm));
        prop_assert!(TILE_CANDIDATES.contains(&t.bn));

        let tlp_of = |bm, bn| thread_level_parallelism(m, n, p, q, bm, bn);
        let any_above = TILE_CANDIDATES.iter().any(|&bm| {
            TILE_CANDIDATES.iter().any(|&bn| tlp_of(bm, bn) >= TLP_THRESHOLD)
        });
        if any_above {
            prop_assert!(tlp_of(t.bm, t.bn) >= TLP_THRESHOLD);
            for &bm in &TILE_CANDIDATES {
                for &bn in &TILE_CANDIDATES {
                    if tlp_of(bm, bn) >= TLP_THRESHOLD {
                        prop_assert!(
                            compute_intensity(t.bm, t.bn) >= compute_intensity(bm, bn),
                            "chosen ({},{}) has lower CI than ({bm},{bn})", t.bm, t.bn
                        );
                    }
                }
            }
        } else {
            for &bm in &TILE_CANDIDATES {
                for &bn in &TILE_CANDIDATES {
                    prop_assert!(tlp_of(t.bm, t.bn) >= tlp_of(bm, bn));
                }
            }
        }
    }

    /// Estimator structural invariants: MAC count matches the closed form,
    /// packed stores never exceed i32 stores, latency positive.
    #[test]
    fn estimator_invariants(
        m in 1usize..600, n in 1usize..600, k in 1usize..2000,
        p in 1u32..=4, q in 1u32..=4,
        out_bits in 1u32..=8,
    ) {
        let spec = GpuSpec::rtx3090();
        let desc = ApmmDesc::unsigned(m, n, k, p, q);
        let apmm = Apmm::new(desc);
        let plain = simmap::estimate(&desc, &apmm.tile, &spec, None);

        // MACs: grid × ksteps × fragment count × 8192.
        let grid = apmm.tile.grid_blocks(desc.batched_m(), desc.batched_n()) as u64;
        let ksteps = (desc.k_padded() / apmm.tile.bk) as u64;
        let frags = ((apmm.tile.bm / 8) * (apmm.tile.bn / 8) * (apmm.tile.bk / 128)) as u64;
        prop_assert_eq!(plain.counters.tc_macs, grid * ksteps * frags * 8192);

        // Emulated MACs never below the logical p·q·M·N·K_pad (padding only
        // adds work).
        prop_assert!(plain.counters.tc_macs >= desc.emulated_macs());

        // Fused packed output strictly reduces store traffic.
        let epi = Epilogue::quantize(4.0, 0.0, out_bits);
        let fused = simmap::estimate(&desc, &apmm.tile, &spec, Some(&epi));
        prop_assert!(fused.counters.global_store_bytes <= plain.counters.global_store_bytes);
        prop_assert!(plain.time_s() > 0.0 && fused.time_s() > 0.0);
    }

    /// The epilogue never emits codes outside the declared width, for any
    /// accumulator value including extremes.
    #[test]
    fn epilogue_codes_always_in_range(
        acc in any::<i32>(),
        scale in 0.001f32..1000.0,
        zp in -1000.0f32..1000.0,
        bits in 1u32..=8,
    ) {
        let epi = Epilogue::quantize(scale, zp, bits);
        let code = epi.apply_to_code(acc, 0);
        prop_assert!(code < (1u32 << bits));
    }

    /// Bigger tiles never lower the CI model, and the TLP model is exactly
    /// inversely proportional to tile area.
    #[test]
    fn performance_model_algebra(
        m in 1usize..4096, n in 1usize..4096, p in 1u32..=8, q in 1u32..=8,
        bm in prop_oneof![Just(16usize), Just(32), Just(64)],
        bn in prop_oneof![Just(16usize), Just(32), Just(64)],
    ) {
        prop_assert!(compute_intensity(2 * bm, bn) >= compute_intensity(bm, bn));
        let t1 = thread_level_parallelism(m, n, p, q, bm, bn);
        let t2 = thread_level_parallelism(m, n, p, q, 2 * bm, bn);
        prop_assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    /// The microkernel differential: for any shape, any encoding pair
    /// (all seven `EmulationCase`s — the four Ampere cases plus the three
    /// XOR-only derivations), any `(JB, KB)` block size, any available
    /// popcount arm and any partial shard, the tiled kernels are
    /// **bit-identical** to the naive decoded i32 oracle — on the ad-hoc
    /// parallel path, the prepared path and the sequential workspace path
    /// alike.
    #[test]
    fn microkernel_matches_oracle_across_cases_blocks_and_shards(
        m in 1usize..14, n in 1usize..22, k in 1usize..280,
        p in 1u32..=4, q in 1u32..=4,
        w_signed in any::<bool>(), x_signed in any::<bool>(),
        xor_only in any::<bool>(),
        jb in 1usize..=8,
        kb in prop_oneof![Just(1usize), Just(2), Just(5), Just(64)],
        arm_sel in 0usize..64,
        shard_sel in 0usize..1000,
        seed in any::<u64>(),
    ) {
        let (p, q) = (if w_signed { 1 } else { p }, if x_signed { 1 } else { q });
        let (w_enc, x_enc) = (
            if w_signed { Encoding::PlusMinusOne } else { Encoding::ZeroOne },
            if x_signed { Encoding::PlusMinusOne } else { Encoding::ZeroOne },
        );
        let mut seed = seed;
        let w = operand(m, k, p, w_signed, &mut seed);
        let x = operand(n, k, q, x_signed, &mut seed);
        let desc = ApmmDesc { m, n, k, w_bits: p, x_bits: q, w_enc, x_enc };
        let micro = MicroTile { jb, kb };
        let arms = PopcntArm::available();
        let arm = arms[arm_sel % arms.len()];
        let oracle = decoded_reference(&w, &x);

        // Ad-hoc parallel path, Ampere or XOR-only (Turing) plan.
        let eplan = plan_for_device(w_enc, x_enc, !xor_only);
        prop_assert_eq!(
            &apmm_cpu_tuned(&desc, &w, &x, eplan, micro, arm),
            &oracle,
            "ad-hoc {:?} jb={} kb={} arm={}", eplan.case, jb, kb, arm.label()
        );

        // Prepared path (partial shard) + sequential workspace path.
        let shard = shard_sel % (n + 1);
        let prepared = Apmm::with_tile(desc, TileConfig::new(32, 32))
            .prepare(w)
            .with_micro(micro)
            .with_arm(arm);
        let xs = if x_signed {
            BitPlanes::from_signed_binary(&x.values()[..shard * k], shard, k)
        } else {
            BitPlanes::from_codes(&x.reconstruct_codes()[..shard * k], shard, k, q, x_enc)
        };
        let got = prepared.execute(&xs);
        let mut scratch = ApmmScratch::default();
        let mut out = Vec::new();
        prepared.execute_into(&xs, &mut scratch, &mut out);
        prop_assert_eq!(&got, &out, "prepared vs sequential shard={}", shard);
        for i in 0..m {
            for j in 0..shard {
                prop_assert_eq!(got[i * shard + j], oracle[i * n + j]);
            }
        }
    }

    /// The conv form of the differential: any stride/pad geometry (the
    /// stride-1 shift-reuse gather included), any encoding pair, any
    /// block size, any available popcount arm and any partial shard
    /// equals the naive conv oracle.
    #[test]
    fn conv_microkernel_matches_oracle_across_blocks_and_shards(
        batch in 1usize..3, cin in 1usize..6, hw in 3usize..8,
        cout in 1usize..10, kk in 1usize..=3,
        stride in 1usize..=2, pad in 0usize..=1,
        p in 1u32..=3, q in 1u32..=3,
        w_signed in any::<bool>(), x_signed in any::<bool>(),
        jb in 1usize..=8,
        kb in prop_oneof![Just(1usize), Just(3), Just(64)],
        arm_sel in 0usize..64,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * pad >= kk);
        let (p, q) = (if w_signed { 1 } else { p }, if x_signed { 1 } else { q });
        let mut desc = ConvDesc::unsigned(batch, cin, hw, cout, kk, stride, pad, p, q);
        if w_signed { desc.w_enc = Encoding::PlusMinusOne; }
        if x_signed { desc.x_enc = Encoding::PlusMinusOne; }
        let mut seed = seed;

        // Packed input + decoded NHWC values for the oracle.
        let codes = Tensor4::<u32>::from_fn(batch, cin, hw, hw, Layout::Nhwc, |_, _, _, _| {
            (lcg(&mut seed) as u32) % (1 << q)
        });
        let input = BitTensor4::from_tensor(&codes, q, desc.x_enc);
        let mut x_vals = vec![0i32; batch * hw * hw * cin];
        for b in 0..batch {
            for y in 0..hw {
                for xx in 0..hw {
                    for c in 0..cin {
                        x_vals[((b * hw + y) * hw + xx) * cin + c] =
                            desc.x_enc.code_value(codes.get(b, c, y, xx), q);
                    }
                }
            }
        }
        let n_w = cout * kk * kk * cin;
        let w_codes: Vec<u32> = (0..n_w)
            .map(|_| (lcg(&mut seed) as u32) % (1 << p))
            .collect();
        let weights = ConvWeights::from_codes(&desc, &w_codes);
        let w_vals: Vec<i32> = w_codes.iter().map(|&c| desc.w_enc.code_value(c, p)).collect();
        let oracle = conv2d_i32(
            &x_vals, &w_vals, batch, hw, hw, cin, cout, kk, kk, stride, pad,
        );

        let micro = MicroTile { jb, kb };
        let arms = PopcntArm::available();
        let arm = arms[arm_sel % arms.len()];
        prop_assert_eq!(
            &conv_cpu_tuned(&desc, &weights, &input, micro, arm),
            &oracle,
            "parallel conv jb={} kb={} arm={}", jb, kb, arm.label()
        );

        // Prepared sequential path on a partial shard.
        let shard = 1 + (seed as usize) % batch;
        let prepared = ApConv::new(desc)
            .prepare(weights)
            .with_micro(micro)
            .with_arm(arm);
        let mut scratch = ConvScratch::default();
        let mut out = Vec::new();
        prepared.execute_into(&input.batch_slice(0, shard), &mut scratch, &mut out);
        let per_image = desc.out_h() * desc.out_w() * cout;
        prop_assert_eq!(&out[..], &oracle[..shard * per_image], "seq conv shard={}", shard);
    }

    /// Latency estimates are monotone in every problem dimension.
    #[test]
    fn estimates_monotone_in_shape(
        m in 8usize..256, n in 8usize..256, k in 128usize..1024,
    ) {
        let spec = GpuSpec::rtx3090();
        let tile = TileConfig::new(32, 32);
        let t = |m, n, k| {
            simmap::estimate(&ApmmDesc::unsigned(m, n, k, 2, 2), &tile, &spec, None).time_s()
        };
        let base = t(m, n, k);
        prop_assert!(t(4 * m, n, k) >= base);
        prop_assert!(t(m, 4 * n, k) >= base);
        prop_assert!(t(m, n, 4 * k) >= base);
    }
}
