//! Property-based tests for the kernel layer: autotuner contract, estimator
//! invariants, epilogue safety.

use apnn_kernels::apmm::{simmap, Apmm, ApmmDesc, TileConfig};
use apnn_kernels::autotune::{
    autotune, compute_intensity, thread_level_parallelism, TILE_CANDIDATES, TLP_THRESHOLD,
};
use apnn_kernels::fusion::Epilogue;
use apnn_sim::GpuSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The §4.3.2 contract: the chosen tile is a candidate pair; if any
    /// candidate clears the TLP threshold, the chosen one clears it too and
    /// has the maximum CI among those that do; otherwise the chosen one has
    /// maximum TLP.
    #[test]
    fn autotune_respects_its_specification(
        m in 1usize..5000, n in 1usize..5000, p in 1u32..=8, q in 1u32..=8,
    ) {
        let t = autotune(m, n, 128, p, q);
        prop_assert!(TILE_CANDIDATES.contains(&t.bm));
        prop_assert!(TILE_CANDIDATES.contains(&t.bn));

        let tlp_of = |bm, bn| thread_level_parallelism(m, n, p, q, bm, bn);
        let any_above = TILE_CANDIDATES.iter().any(|&bm| {
            TILE_CANDIDATES.iter().any(|&bn| tlp_of(bm, bn) >= TLP_THRESHOLD)
        });
        if any_above {
            prop_assert!(tlp_of(t.bm, t.bn) >= TLP_THRESHOLD);
            for &bm in &TILE_CANDIDATES {
                for &bn in &TILE_CANDIDATES {
                    if tlp_of(bm, bn) >= TLP_THRESHOLD {
                        prop_assert!(
                            compute_intensity(t.bm, t.bn) >= compute_intensity(bm, bn),
                            "chosen ({},{}) has lower CI than ({bm},{bn})", t.bm, t.bn
                        );
                    }
                }
            }
        } else {
            for &bm in &TILE_CANDIDATES {
                for &bn in &TILE_CANDIDATES {
                    prop_assert!(tlp_of(t.bm, t.bn) >= tlp_of(bm, bn));
                }
            }
        }
    }

    /// Estimator structural invariants: MAC count matches the closed form,
    /// packed stores never exceed i32 stores, latency positive.
    #[test]
    fn estimator_invariants(
        m in 1usize..600, n in 1usize..600, k in 1usize..2000,
        p in 1u32..=4, q in 1u32..=4,
        out_bits in 1u32..=8,
    ) {
        let spec = GpuSpec::rtx3090();
        let desc = ApmmDesc::unsigned(m, n, k, p, q);
        let apmm = Apmm::new(desc);
        let plain = simmap::estimate(&desc, &apmm.tile, &spec, None);

        // MACs: grid × ksteps × fragment count × 8192.
        let grid = apmm.tile.grid_blocks(desc.batched_m(), desc.batched_n()) as u64;
        let ksteps = (desc.k_padded() / apmm.tile.bk) as u64;
        let frags = ((apmm.tile.bm / 8) * (apmm.tile.bn / 8) * (apmm.tile.bk / 128)) as u64;
        prop_assert_eq!(plain.counters.tc_macs, grid * ksteps * frags * 8192);

        // Emulated MACs never below the logical p·q·M·N·K_pad (padding only
        // adds work).
        prop_assert!(plain.counters.tc_macs >= desc.emulated_macs());

        // Fused packed output strictly reduces store traffic.
        let epi = Epilogue::quantize(4.0, 0.0, out_bits);
        let fused = simmap::estimate(&desc, &apmm.tile, &spec, Some(&epi));
        prop_assert!(fused.counters.global_store_bytes <= plain.counters.global_store_bytes);
        prop_assert!(plain.time_s() > 0.0 && fused.time_s() > 0.0);
    }

    /// The epilogue never emits codes outside the declared width, for any
    /// accumulator value including extremes.
    #[test]
    fn epilogue_codes_always_in_range(
        acc in any::<i32>(),
        scale in 0.001f32..1000.0,
        zp in -1000.0f32..1000.0,
        bits in 1u32..=8,
    ) {
        let epi = Epilogue::quantize(scale, zp, bits);
        let code = epi.apply_to_code(acc, 0);
        prop_assert!(code < (1u32 << bits));
    }

    /// Bigger tiles never lower the CI model, and the TLP model is exactly
    /// inversely proportional to tile area.
    #[test]
    fn performance_model_algebra(
        m in 1usize..4096, n in 1usize..4096, p in 1u32..=8, q in 1u32..=8,
        bm in prop_oneof![Just(16usize), Just(32), Just(64)],
        bn in prop_oneof![Just(16usize), Just(32), Just(64)],
    ) {
        prop_assert!(compute_intensity(2 * bm, bn) >= compute_intensity(bm, bn));
        let t1 = thread_level_parallelism(m, n, p, q, bm, bn);
        let t2 = thread_level_parallelism(m, n, p, q, 2 * bm, bn);
        prop_assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    /// Latency estimates are monotone in every problem dimension.
    #[test]
    fn estimates_monotone_in_shape(
        m in 8usize..256, n in 8usize..256, k in 128usize..1024,
    ) {
        let spec = GpuSpec::rtx3090();
        let tile = TileConfig::new(32, 32);
        let t = |m, n, k| {
            simmap::estimate(&ApmmDesc::unsigned(m, n, k, 2, 2), &tile, &spec, None).time_s()
        };
        let base = t(m, n, k);
        prop_assert!(t(4 * m, n, k) >= base);
        prop_assert!(t(m, 4 * n, k) >= base);
        prop_assert!(t(m, n, 4 * k) >= base);
    }
}
