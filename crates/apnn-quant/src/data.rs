//! Reproducible synthetic image-classification dataset.
//!
//! The offline stand-in for ImageNet in the Table 1 accuracy experiment
//! (see `DESIGN.md` §2): each class is a random prototype pattern; samples
//! mix their class prototype with shared "style" directions and Gaussian
//! pixel noise, then squash into `[0, 1]`. The mixing keeps the problem
//! non-trivial (not linearly separable at high noise) so quantization has
//! visible accuracy cost, which is the phenomenon Table 1 measures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fixed train/test split of synthetic feature vectors.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Training features, row-major `n × dim`, values in `[0, 1]`.
    pub train_x: Vec<f32>,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test features.
    pub test_x: Vec<f32>,
    /// Test labels.
    pub test_y: Vec<usize>,
}

impl SyntheticDataset {
    /// Generate a dataset.
    ///
    /// * `noise` — Gaussian pixel-noise σ. The class signal has unit-ish
    ///   scale ~0.35, so σ ≳ 0.8 puts the task in the regime where reduced
    ///   activation/weight resolution has visible accuracy cost — the
    ///   phenomenon Table 1 measures.
    pub fn generate(
        num_classes: usize,
        dim: usize,
        train_per_class: usize,
        test_per_class: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Class prototypes (deliberately weak signal) and shared style
        // directions.
        let protos: Vec<Vec<f32>> = (0..num_classes)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.35f32..0.35)).collect())
            .collect();
        let n_styles = 4;
        let styles: Vec<Vec<f32>> = (0..n_styles)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();

        #[allow(clippy::needless_range_loop)] // class indexes the prototype table
        let gen_split = |per_class: usize, rng: &mut SmallRng| {
            let mut xs = Vec::with_capacity(num_classes * per_class * dim);
            let mut ys = Vec::with_capacity(num_classes * per_class);
            for class in 0..num_classes {
                for _ in 0..per_class {
                    let style_w: Vec<f32> =
                        (0..n_styles).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
                    for d in 0..dim {
                        let mut v = protos[class][d];
                        for (s, sw) in style_w.iter().enumerate() {
                            v += sw * styles[s][d];
                        }
                        // Gaussian noise via CLT of 4 uniforms.
                        let g: f32 = (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                        v += noise * g * 1.732;
                        // Squash into [0, 1] (sigmoid-ish).
                        xs.push(0.5 + 0.5 * (v).tanh());
                    }
                    ys.push(class);
                }
            }
            (xs, ys)
        };

        let (train_x, train_y) = gen_split(train_per_class, &mut rng);
        let (test_x, test_y) = gen_split(test_per_class, &mut rng);
        SyntheticDataset {
            num_classes,
            dim,
            train_x,
            train_y,
            test_x,
            test_y,
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_y.len()
    }

    /// One training sample.
    pub fn train_sample(&self, i: usize) -> (&[f32], usize) {
        (
            &self.train_x[i * self.dim..(i + 1) * self.dim],
            self.train_y[i],
        )
    }

    /// One test sample.
    pub fn test_sample(&self, i: usize) -> (&[f32], usize) {
        (
            &self.test_x[i * self.dim..(i + 1) * self.dim],
            self.test_y[i],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticDataset::generate(4, 16, 10, 5, 0.3, 42);
        let b = SyntheticDataset::generate(4, 16, 10, 5, 0.3, 42);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.test_y, b.test_y);
        let c = SyntheticDataset::generate(4, 16, 10, 5, 0.3, 43);
        assert_ne!(a.train_x, c.train_x);
    }

    #[test]
    fn shapes_and_ranges() {
        let d = SyntheticDataset::generate(5, 32, 20, 10, 0.4, 1);
        assert_eq!(d.train_len(), 100);
        assert_eq!(d.test_len(), 50);
        assert_eq!(d.train_x.len(), 100 * 32);
        assert!(d.train_x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let (x, y) = d.test_sample(49);
        assert_eq!(x.len(), 32);
        assert!(y < 5);
    }

    #[test]
    fn classes_are_balanced() {
        let d = SyntheticDataset::generate(3, 8, 7, 3, 0.2, 9);
        for c in 0..3 {
            assert_eq!(d.train_y.iter().filter(|&&y| y == c).count(), 7);
            assert_eq!(d.test_y.iter().filter(|&&y| y == c).count(), 3);
        }
    }
}
