//! Compact binary model artifacts for exported networks.
//!
//! A deployed APNN model is tiny — ±1 weights pack to one bit each, plus a
//! scale and a bias vector per layer. This module defines the `APNN1` wire
//! format so models trained with [`mod@crate::train`] and lowered with
//! [`crate::export`] can be saved and shipped:
//!
//! ```text
//! magic "APNN"  version u16  a_bits u8  input_bits u8
//! dim u32  classes u32  n_layers u32
//! per layer:
//!   fan_in u32  fan_out u32  s_w f32
//!   bias_folded f32 × fan_out
//!   signs, bit-packed row-major (bit 1 ⇒ +1), padded to a byte
//! ```
//!
//! All integers little-endian.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::export::{ExportedLayer, ExportedNet};

/// Wire-format magic.
pub const MAGIC: &[u8; 4] = b"APNN";
/// Current wire-format version.
pub const VERSION: u16 = 1;

/// Serialization / deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelFormatError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Buffer ended before the declared contents.
    Truncated,
    /// A declared dimension was inconsistent.
    BadShape(&'static str),
}

impl std::fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelFormatError::BadMagic => write!(f, "not an APNN model (bad magic)"),
            ModelFormatError::BadVersion(v) => write!(f, "unsupported model version {v}"),
            ModelFormatError::Truncated => write!(f, "model buffer truncated"),
            ModelFormatError::BadShape(what) => write!(f, "inconsistent model shape: {what}"),
        }
    }
}

impl std::error::Error for ModelFormatError {}

impl ExportedNet {
    /// Serialize to the `APNN1` binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(self.a_bits as u8);
        buf.put_u8(self.input_bits as u8);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.classes as u32);
        buf.put_u32_le(self.layers.len() as u32);
        for l in &self.layers {
            buf.put_u32_le(l.fan_in as u32);
            buf.put_u32_le(l.fan_out as u32);
            buf.put_f32_le(l.s_w);
            for &b in &l.bias_folded {
                buf.put_f32_le(b);
            }
            // Bit-pack the signs.
            let mut byte = 0u8;
            for (i, &s) in l.signs.iter().enumerate() {
                if s > 0 {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if l.signs.len() % 8 != 0 {
                buf.put_u8(byte);
            }
        }
        buf.freeze()
    }

    /// Deserialize from the `APNN1` binary format.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, ModelFormatError> {
        use ModelFormatError::*;
        if data.remaining() < 6 {
            return Err(Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(BadMagic);
        }
        let version = data.get_u16_le();
        if version != VERSION {
            return Err(BadVersion(version));
        }
        if data.remaining() < 2 + 12 {
            return Err(Truncated);
        }
        let a_bits = data.get_u8() as u32;
        let input_bits = data.get_u8() as u32;
        if !(1..=8).contains(&a_bits) || !(1..=8).contains(&input_bits) {
            return Err(BadShape("bit widths must be 1..=8"));
        }
        let dim = data.get_u32_le() as usize;
        let classes = data.get_u32_le() as usize;
        let n_layers = data.get_u32_le() as usize;
        if n_layers == 0 {
            return Err(BadShape("zero layers"));
        }

        let mut layers = Vec::with_capacity(n_layers);
        let mut expect_in = dim;
        for li in 0..n_layers {
            if data.remaining() < 12 {
                return Err(Truncated);
            }
            let fan_in = data.get_u32_le() as usize;
            let fan_out = data.get_u32_le() as usize;
            let s_w = data.get_f32_le();
            if fan_in != expect_in {
                return Err(BadShape("layer fan_in does not chain"));
            }
            if li + 1 == n_layers && fan_out != classes {
                return Err(BadShape("classifier width != classes"));
            }
            if data.remaining() < 4 * fan_out {
                return Err(Truncated);
            }
            let bias_folded: Vec<f32> = (0..fan_out).map(|_| data.get_f32_le()).collect();
            let n_signs = fan_in * fan_out;
            let n_bytes = n_signs.div_ceil(8);
            if data.remaining() < n_bytes {
                return Err(Truncated);
            }
            let mut signs = Vec::with_capacity(n_signs);
            let mut consumed = 0usize;
            while consumed < n_signs {
                let byte = data.get_u8();
                for bit in 0..8 {
                    if consumed == n_signs {
                        break;
                    }
                    signs.push(if (byte >> bit) & 1 == 1 { 1 } else { -1 });
                    consumed += 1;
                }
            }
            expect_in = fan_out;
            layers.push(ExportedLayer {
                signs,
                s_w,
                bias_folded,
                fan_in,
                fan_out,
            });
        }
        Ok(ExportedNet {
            layers,
            a_bits,
            input_bits,
            dim,
            classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;
    use crate::mlp::QuantScheme;
    use crate::train::{train, TrainConfig};

    fn trained() -> (SyntheticDataset, ExportedNet) {
        let data = SyntheticDataset::generate(4, 20, 30, 20, 0.35, 3);
        let mut cfg = TrainConfig::new(
            vec![24],
            QuantScheme::Quantized {
                w_bits: 1,
                a_bits: 2,
                quantize_output: true,
            },
        );
        cfg.epochs = 8;
        let r = train(&data, &cfg);
        (data, crate::export::export_mlp(&r.mlp))
    }

    #[test]
    fn roundtrip_preserves_predictions_exactly() {
        let (data, net) = trained();
        let bytes = net.to_bytes();
        let restored = ExportedNet::from_bytes(&bytes).unwrap();
        let batch = data.test_len();
        assert_eq!(
            net.predict(&data.test_x, batch),
            restored.predict(&data.test_x, batch)
        );
    }

    #[test]
    fn artifact_is_compact() {
        let (_, net) = trained();
        let bytes = net.to_bytes();
        // ±1 weights pack to 1 bit: 20*24 + 24*4 = 576 weights = 72 bytes,
        // plus biases (28 f32) and headers — well under a float model.
        let float_size = (20 * 24 + 24 * 4 + 28) * 4;
        assert!(bytes.len() < float_size / 2, "{} bytes", bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ExportedNet::from_bytes(b"NOPE\x01\x00rest"),
            Err(ModelFormatError::BadMagic)
        );
    }

    #[test]
    fn truncation_detected_everywhere() {
        let (_, net) = trained();
        let bytes = net.to_bytes();
        // Every strict prefix must fail cleanly (no panic).
        for cut in [0, 3, 6, 10, 20, bytes.len() - 1] {
            let r = ExportedNet::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly parsed");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let (_, net) = trained();
        let mut raw = net.to_bytes().to_vec();
        raw[4] = 99;
        assert_eq!(
            ExportedNet::from_bytes(&raw),
            Err(ModelFormatError::BadVersion(99))
        );
    }
}
