//! QAT training loop + the Table 1 accuracy experiment driver.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::SyntheticDataset;
use crate::mlp::{Grads, Mlp, QuantScheme};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Precision scheme.
    pub scheme: QuantScheme,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// Minibatch size.
    pub batch: usize,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Reasonable defaults for the synthetic Table 1 experiment.
    pub fn new(hidden: Vec<usize>, scheme: QuantScheme) -> Self {
        TrainConfig {
            hidden,
            scheme,
            epochs: 30,
            lr: 0.3,
            batch: 32,
            seed: 17,
        }
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Train-set accuracy.
    pub train_acc: f32,
    /// Test-set accuracy.
    pub test_acc: f32,
    /// The trained model.
    pub mlp: Mlp,
}

/// Train an MLP on the dataset under the configured scheme.
pub fn train(data: &SyntheticDataset, cfg: &TrainConfig) -> TrainResult {
    let mut dims = vec![data.dim];
    dims.extend_from_slice(&cfg.hidden);
    dims.push(data.num_classes);
    let mlp = Mlp::new(&dims, cfg.scheme, cfg.seed);
    train_model(data, mlp, cfg)
}

/// Train a pre-built model (any scheme, including a per-layer mixed one)
/// with the loop/schedule in `cfg` (`cfg.hidden`/`cfg.scheme` are ignored —
/// the model already fixes both).
pub fn train_model(data: &SyntheticDataset, mut mlp: Mlp, cfg: &TrainConfig) -> TrainResult {
    let mut grads = Grads::for_mlp(&mlp);
    let mut order: Vec<usize> = (0..data.train_len()).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let lr = cfg.lr * (1.0 - 0.9 * epoch as f32 / cfg.epochs.max(1) as f32);
        for chunk in order.chunks(cfg.batch) {
            let xs: Vec<&[f32]> = chunk.iter().map(|&i| data.train_sample(i).0).collect();
            let ys: Vec<usize> = chunk.iter().map(|&i| data.train_sample(i).1).collect();
            mlp.train_batch(&xs, &ys, lr, &mut grads);
        }
    }

    TrainResult {
        train_acc: mlp.accuracy(&data.train_x, &data.train_y, data.dim),
        test_acc: mlp.accuracy(&data.test_x, &data.test_y, data.dim),
        mlp,
    }
}

/// Accuracy harness for the per-layer precision autotuner: train the proxy
/// architecture `[data.dim, hidden…, classes]` under a per-layer
/// `(w_bits, a_bits)` schedule (one entry per dense layer — see
/// [`Mlp::new_mixed`]) and return the best test accuracy over `restarts`
/// independent inits. Low-bit QAT at this scale occasionally collapses to
/// chance on an unlucky init, so best-of-N is the stable "achievable
/// accuracy" statistic for ranking schedules. Deterministic in `seed` —
/// restart `i` trains with `seed + i` — so a candidate scores the same on
/// every run.
pub fn schedule_accuracy(
    data: &SyntheticDataset,
    hidden: &[usize],
    layer_bits: &[(u32, u32)],
    epochs: usize,
    restarts: usize,
    seed: u64,
) -> f32 {
    let mut dims = vec![data.dim];
    dims.extend_from_slice(hidden);
    dims.push(data.num_classes);
    let mut best = 0.0f32;
    for i in 0..restarts.max(1) as u64 {
        let mlp = Mlp::new_mixed(&dims, layer_bits, seed + i);
        let mut cfg = TrainConfig::new(hidden.to_vec(), mlp.scheme);
        cfg.epochs = epochs;
        cfg.seed = seed + i;
        best = best.max(train_model(data, mlp, &cfg).test_acc);
    }
    best
}

/// The Table 1 experiment: train the same architecture at float / w1a2 /
/// binary and return `(binary, w1a2, float)` test accuracies.
pub fn table1_experiment(
    data: &SyntheticDataset,
    hidden: Vec<usize>,
    seed: u64,
) -> (f32, f32, f32) {
    let run = |scheme| {
        let mut cfg = TrainConfig::new(hidden.clone(), scheme);
        cfg.seed = seed;
        train(data, &cfg).test_acc
    };
    let float = run(QuantScheme::Float);
    let w1a2 = run(QuantScheme::w1a2());
    let binary = run(QuantScheme::binary());
    (binary, w1a2, float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(6, 48, 60, 30, 0.45, 11)
    }

    #[test]
    fn float_training_beats_chance() {
        let data = dataset();
        let mut cfg = TrainConfig::new(vec![64], QuantScheme::Float);
        cfg.epochs = 15;
        let r = train(&data, &cfg);
        assert!(
            r.test_acc > 2.0 / data.num_classes as f32,
            "test acc {}",
            r.test_acc
        );
        assert!(r.train_acc >= r.test_acc * 0.8);
    }

    #[test]
    fn quantized_training_still_learns() {
        let data = dataset();
        let mut cfg = TrainConfig::new(vec![64], QuantScheme::w1a2());
        cfg.epochs = 15;
        let r = train(&data, &cfg);
        assert!(r.test_acc > 1.5 / data.num_classes as f32, "{}", r.test_acc);
    }

    #[test]
    fn schedule_accuracy_is_deterministic_and_learns() {
        let data = dataset();
        let bits = [(3, 3), (2, 2), (4, 4)];
        let a1 = schedule_accuracy(&data, &[48, 32], &bits, 15, 3, 11);
        let a2 = schedule_accuracy(&data, &[48, 32], &bits, 15, 3, 11);
        assert_eq!(a1.to_bits(), a2.to_bits());
        assert!(a1 > 1.5 / data.num_classes as f32, "{a1}");
    }

    #[test]
    #[ignore = "slow: full Table-1 ordering; run with --ignored (release mode advised)"]
    fn table1_ordering_holds() {
        let data = SyntheticDataset::generate(10, 96, 200, 100, 1.0, 2021);
        let mut cfg = TrainConfig::new(vec![64, 32], QuantScheme::Float);
        cfg.epochs = 40;
        cfg.seed = 5;
        let float = train(&data, &cfg).test_acc;
        cfg.scheme = QuantScheme::w1a2();
        let w1a2 = train(&data, &cfg).test_acc;
        cfg.scheme = QuantScheme::binary();
        let binary = train(&data, &cfg).test_acc;
        assert!(float >= w1a2 - 0.03, "float {float} vs w1a2 {w1a2}");
        assert!(w1a2 > binary, "w1a2 {w1a2} vs binary {binary}");
    }
}
