//! Affine (scale / zero-point) quantization — the paper's §5.2 quantize op:
//! `y = ⌊(x − z)/s⌋`, clamped to the code range.

/// An affine quantizer to `bits`-wide unsigned codes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineQuant {
    /// Scale `s` (> 0).
    pub scale: f32,
    /// Zero point `z`.
    pub zero_point: f32,
    /// Code width.
    pub bits: u32,
}

impl AffineQuant {
    /// Largest representable code.
    pub fn max_code(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Fit a quantizer to a data range `[lo, hi]` so the codes span it.
    pub fn fit_range(lo: f32, hi: f32, bits: u32) -> Self {
        assert!((1..=8).contains(&bits));
        let hi = hi.max(lo + f32::EPSILON);
        let levels = ((1u32 << bits) - 1) as f32;
        AffineQuant {
            scale: (hi - lo) / levels,
            zero_point: lo,
            bits,
        }
    }

    /// Fit to the min/max of a sample.
    pub fn fit_minmax(data: &[f32], bits: u32) -> Self {
        let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        Self::fit_range(lo.min(0.0), hi, bits)
    }

    /// Quantize one value to a code.
    #[inline]
    pub fn quantize(&self, x: f32) -> u32 {
        let q = ((x - self.zero_point) / self.scale).floor();
        q.clamp(0.0, self.max_code() as f32) as u32
    }

    /// Dequantize a code back to (the floor of) its value bucket's origin.
    #[inline]
    pub fn dequantize(&self, code: u32) -> f32 {
        code as f32 * self.scale + self.zero_point
    }

    /// Fake-quantize (quantize → dequantize), the QAT forward transform.
    #[inline]
    pub fn fake(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Quantize a slice into codes.
    pub fn quantize_all(&self, xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_range_spans_codes() {
        let q = AffineQuant::fit_range(0.0, 3.0, 2);
        assert_eq!(q.max_code(), 3);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(2.999), 2);
        assert_eq!(q.quantize(3.0), 3);
        assert_eq!(q.quantize(100.0), 3); // clamps
        assert_eq!(q.quantize(-5.0), 0);
    }

    #[test]
    fn floor_semantics_match_paper() {
        let q = AffineQuant {
            scale: 2.0,
            zero_point: 1.0,
            bits: 4,
        };
        // ⌊(7−1)/2⌋ = 3.
        assert_eq!(q.quantize(7.0), 3);
        assert_eq!(q.quantize(7.99), 3);
        assert_eq!(q.quantize(8.0), 3); // ⌊7/2⌋ = 3 (floor, not round)
        assert_eq!(q.quantize(9.0), 4);
    }

    #[test]
    fn fake_is_idempotent() {
        let q = AffineQuant::fit_range(-1.0, 1.0, 3);
        for x in [-1.0f32, -0.3, 0.0, 0.7, 1.0] {
            let f = q.fake(x);
            assert_eq!(q.fake(f), f);
        }
    }

    #[test]
    fn quantization_error_bounded_by_scale() {
        let q = AffineQuant::fit_range(0.0, 10.0, 4);
        for i in 0..100 {
            let x = i as f32 / 10.0;
            assert!((q.fake(x) - x).abs() <= q.scale + 1e-6);
        }
    }
}
