//! A manual-backprop MLP classifier with straight-through-estimator
//! quantization-aware training (QAT).
//!
//! Forward pass under [`QuantScheme::Quantized`]:
//! * weights of every hidden layer are fake-quantized (1-bit: scaled sign,
//!   the XNOR/DoReFa rule; multi-bit: DoReFa);
//! * hidden activations are clipped to `[0, 1]` and fake-quantized to
//!   `a` bits (DoReFa activation rule);
//! * the classifier layer optionally stays float (standard LQ-Nets/DoReFa
//!   practice, and what keeps Table 1's w1a2 close to float).
//!
//! Backward uses the straight-through estimator: quantizers pass gradients
//! where the pre-activation lies inside the clip range.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dorefa;

/// Precision scheme for QAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantScheme {
    /// Full-precision training (the Table 1 "Single" column).
    Float,
    /// `w`-bit weights / `a`-bit activations with STE.
    Quantized {
        /// Weight bits.
        w_bits: u32,
        /// Activation bits.
        a_bits: u32,
        /// Quantize the final classifier layer too (required for lowering
        /// onto the integer engine; off for best accuracy).
        quantize_output: bool,
    },
}

impl QuantScheme {
    /// The Table 1 "Binary" column: 1-bit weights, ±1 sign activations (the
    /// 1-bit member of the symmetric hard-tanh activation family).
    pub fn binary() -> Self {
        QuantScheme::Quantized {
            w_bits: 1,
            a_bits: 1,
            quantize_output: false,
        }
    }

    /// w1a2 (the paper's flagship configuration).
    pub fn w1a2() -> Self {
        QuantScheme::Quantized {
            w_bits: 1,
            a_bits: 2,
            quantize_output: false,
        }
    }
}

/// One dense layer.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, row-major `out × in`.
    pub w: Vec<f32>,
    /// Bias, `out`.
    pub b: Vec<f32>,
    /// Input width.
    pub fan_in: usize,
    /// Output width.
    pub fan_out: usize,
}

/// The MLP.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layers, last one is the classifier.
    pub layers: Vec<Dense>,
    /// Precision scheme.
    pub scheme: QuantScheme,
    /// Per-layer `(w_bits, a_bits)` overriding [`Self::scheme`] when set
    /// (one entry per dense layer; the classifier's entry is unused — the
    /// classifier stays float, the standard DoReFa/LQ-Nets practice the
    /// uniform harness also follows, and logits are never re-quantized).
    /// This is the accuracy side of the per-layer precision autotuner.
    pub layer_bits: Option<Vec<(u32, u32)>>,
}

/// Per-layer forward cache for backprop.
struct Cache {
    /// Layer inputs (post-quant activations of the previous layer).
    inputs: Vec<Vec<f32>>,
    /// Pre-activations.
    zs: Vec<Vec<f32>>,
    /// Effective (fake-quantized) weights per layer.
    w_eff: Vec<Vec<f32>>,
}

impl Mlp {
    /// He-initialized MLP: `dims = [in, h1, …, out]`.
    pub fn new(dims: &[usize], scheme: QuantScheme, seed: u64) -> Self {
        assert!(dims.len() >= 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|wd| {
                let (fan_in, fan_out) = (wd[0], wd[1]);
                let std = (2.0 / fan_in as f32).sqrt();
                Dense {
                    w: (0..fan_in * fan_out)
                        .map(|_| {
                            let g: f32 = (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                            g * 1.732 * std
                        })
                        .collect(),
                    b: vec![0.0; fan_out],
                    fan_in,
                    fan_out,
                }
            })
            .collect();
        Mlp {
            layers,
            scheme,
            layer_bits: None,
        }
    }

    /// He-initialized MLP with a per-layer `(w_bits, a_bits)` schedule
    /// (`layer_bits.len()` must equal the number of dense layers,
    /// `dims.len() - 1`). Hidden layers quantize weights and activations at
    /// their own bits; the classifier stays float (see [`Self::layer_bits`]).
    pub fn new_mixed(dims: &[usize], layer_bits: &[(u32, u32)], seed: u64) -> Self {
        assert_eq!(
            layer_bits.len(),
            dims.len() - 1,
            "one (w, a) entry per dense layer"
        );
        let (w0, a0) = layer_bits[0];
        let mut mlp = Self::new(
            dims,
            QuantScheme::Quantized {
                w_bits: w0,
                a_bits: a0,
                quantize_output: false,
            },
            seed,
        );
        mlp.layer_bits = Some(layer_bits.to_vec());
        mlp
    }

    fn effective_weights(&self, li: usize) -> Vec<f32> {
        if let Some(lb) = &self.layer_bits {
            return if li + 1 == self.layers.len() {
                self.layers[li].w.clone()
            } else {
                dorefa::quantize_weights(&self.layers[li].w, lb[li].0)
            };
        }
        let last = li + 1 == self.layers.len();
        match self.scheme {
            QuantScheme::Float => self.layers[li].w.clone(),
            QuantScheme::Quantized {
                w_bits,
                quantize_output,
                ..
            } => {
                if last && !quantize_output {
                    self.layers[li].w.clone()
                } else {
                    dorefa::quantize_weights(&self.layers[li].w, w_bits)
                }
            }
        }
    }

    fn activation_bits(&self) -> Option<u32> {
        match self.scheme {
            QuantScheme::Float => None,
            QuantScheme::Quantized { a_bits, .. } => Some(a_bits),
        }
    }

    /// Output-activation bits of layer `li` (`None` = float hard-tanh).
    fn layer_activation_bits(&self, li: usize) -> Option<u32> {
        match &self.layer_bits {
            Some(lb) => Some(lb[li].1),
            None => self.activation_bits(),
        }
    }

    /// Forward pass for one input; returns logits.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let (logits, _) = self.forward_cached(x);
        logits
    }

    fn forward_cached(&self, x: &[f32]) -> (Vec<f32>, Cache) {
        let mut cache = Cache {
            inputs: Vec::with_capacity(self.layers.len()),
            zs: Vec::with_capacity(self.layers.len()),
            w_eff: Vec::with_capacity(self.layers.len()),
        };
        let mut a = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let w_eff = self.effective_weights(li);
            let mut z = layer.b.clone();
            for o in 0..layer.fan_out {
                let row = &w_eff[o * layer.fan_in..(o + 1) * layer.fan_in];
                let mut acc = 0.0f32;
                for (wi, ai) in row.iter().zip(a.iter()) {
                    acc += wi * ai;
                }
                z[o] += acc;
            }
            cache.inputs.push(a.clone());
            cache.zs.push(z.clone());
            cache.w_eff.push(w_eff);
            let last = li + 1 == self.layers.len();
            if last {
                return (z, cache);
            }
            // Hidden activation: hard-tanh, fake-quantized to the symmetric
            // a-bit grid under QAT (1 bit ⇒ the BNN sign activation).
            a = z
                .iter()
                .map(|&v| {
                    let c = v.clamp(-1.0, 1.0);
                    match self.layer_activation_bits(li) {
                        None => c,
                        Some(bits) => dorefa::quantize_symmetric(c, bits).0,
                    }
                })
                .collect();
        }
        unreachable!()
    }

    /// One SGD step on a minibatch; returns the mean cross-entropy loss.
    pub fn train_batch(&mut self, xs: &[&[f32]], ys: &[usize], lr: f32, grads: &mut Grads) -> f32 {
        grads.zero(self);
        let mut loss = 0.0f32;
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let (logits, cache) = self.forward_cached(x);
            loss += self.backward(&logits, y, &cache, grads);
        }
        let scale = lr / xs.len() as f32;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (w, g) in layer.w.iter_mut().zip(&grads.w[li]) {
                *w -= scale * g;
            }
            for (b, g) in layer.b.iter_mut().zip(&grads.b[li]) {
                *b -= scale * g;
            }
        }
        loss / xs.len() as f32
    }

    /// Backprop one sample into `grads`; returns the CE loss.
    #[allow(clippy::needless_range_loop)] // o indexes outputs across three buffers
    fn backward(&self, logits: &[f32], y: usize, cache: &Cache, grads: &mut Grads) -> f32 {
        // Softmax + CE.
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
        let loss = -(probs[y].max(1e-12)).ln();

        // dL/dz for the output layer.
        let mut dz: Vec<f32> = probs;
        dz[y] -= 1.0;

        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &cache.inputs[li];
            // Accumulate weight/bias grads (STE: grads flow to the latent
            // float weights as if w_eff were identity in w).
            for o in 0..layer.fan_out {
                grads.b[li][o] += dz[o];
                let grow = &mut grads.w[li][o * layer.fan_in..(o + 1) * layer.fan_in];
                for (g, a) in grow.iter_mut().zip(input.iter()) {
                    *g += dz[o] * a;
                }
            }
            if li == 0 {
                break;
            }
            // Propagate: dL/da_prev = Wᵀ dz, then through the clip/quant STE
            // (pass where the *pre-activation* was inside (0,1)).
            let w_eff = &cache.w_eff[li];
            let prev = &self.layers[li - 1];
            let mut da = vec![0.0f32; prev.fan_out];
            for o in 0..layer.fan_out {
                let row = &w_eff[o * layer.fan_in..(o + 1) * layer.fan_in];
                for (i, wv) in row.iter().enumerate() {
                    da[i] += wv * dz[o];
                }
            }
            let zprev = &cache.zs[li - 1];
            // Hard-tanh STE: gradients pass where |z| ≤ 1.
            dz = da
                .iter()
                .zip(zprev.iter())
                .map(|(&g, &z)| if z.abs() <= 1.0 { g } else { 0.0 })
                .collect();
        }
        loss
    }

    /// Classification accuracy over `(xs, ys)` rows of width `dim`.
    pub fn accuracy(&self, xs: &[f32], ys: &[usize], dim: usize) -> f32 {
        let mut correct = 0usize;
        for (i, &y) in ys.iter().enumerate() {
            let logits = self.forward(&xs[i * dim..(i + 1) * dim]);
            let pred = argmax(&logits);
            if pred == y {
                correct += 1;
            }
        }
        correct as f32 / ys.len().max(1) as f32
    }
}

/// Index of the maximum element.
pub fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Gradient buffers matching an [`Mlp`].
#[derive(Debug, Default)]
pub struct Grads {
    w: Vec<Vec<f32>>,
    b: Vec<Vec<f32>>,
}

impl Grads {
    /// Allocate for a network.
    pub fn for_mlp(mlp: &Mlp) -> Self {
        Grads {
            w: mlp.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            b: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    fn zero(&mut self, mlp: &Mlp) {
        if self.w.len() != mlp.layers.len() {
            *self = Self::for_mlp(mlp);
            return;
        }
        for g in self.w.iter_mut().chain(self.b.iter_mut()) {
            g.iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[8, 16, 4], QuantScheme::Float, 1);
        let x = vec![0.5f32; 8];
        let logits = mlp.forward(&x);
        assert_eq!(logits.len(), 4);
    }

    #[test]
    fn float_learns_xor_like_separation() {
        // Two blobs per class along different dims — learnable quickly.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let c = i % 2;
            let base = if c == 0 { 0.2 } else { 0.8 };
            xs.push(vec![base + 0.05 * ((i / 2) % 3) as f32, 1.0 - base]);
            ys.push(c);
        }
        let mut mlp = Mlp::new(&[2, 16, 2], QuantScheme::Float, 3);
        let mut grads = Grads::for_mlp(&mlp);
        let flat: Vec<f32> = xs.iter().flatten().cloned().collect();
        for _ in 0..200 {
            let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
            mlp.train_batch(&refs, &ys, 0.5, &mut grads);
        }
        assert!(mlp.accuracy(&flat, &ys, 2) > 0.95);
    }

    #[test]
    fn loss_decreases_under_training() {
        let xs: Vec<Vec<f32>> = (0..32)
            .map(|i| vec![(i % 4) as f32 / 4.0, (i % 8) as f32 / 8.0, 0.5])
            .collect();
        let ys: Vec<usize> = (0..32).map(|i| i % 4).collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut mlp = Mlp::new(&[3, 32, 4], QuantScheme::Float, 5);
        let mut grads = Grads::for_mlp(&mlp);
        let first = mlp.train_batch(&refs, &ys, 0.3, &mut grads);
        let mut last = first;
        for _ in 0..100 {
            last = mlp.train_batch(&refs, &ys, 0.3, &mut grads);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn quantized_forward_uses_discrete_weights() {
        let mlp = Mlp::new(&[4, 8, 2], QuantScheme::w1a2(), 7);
        let w_eff = mlp.effective_weights(0);
        // 1-bit effective weights take exactly two values ±scale.
        let mut distinct: Vec<f32> = w_eff.to_vec();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert_eq!(distinct.len(), 2);
        assert!((distinct[0] + distinct[1]).abs() < 1e-6);
        // Classifier stays float (more than 2 distinct values almost surely).
        let w_last = mlp.effective_weights(1);
        let mut d2: Vec<f32> = w_last.to_vec();
        d2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d2.dedup();
        assert!(d2.len() > 2);
    }

    #[test]
    fn mixed_schedule_quantizes_every_layer_at_its_own_bits() {
        let mlp = Mlp::new_mixed(&[4, 8, 6, 2], &[(1, 2), (2, 2), (1, 1)], 7);
        let distinct = |v: &[f32]| {
            let mut d = v.to_vec();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d.dedup();
            d.len()
        };
        // Layer 0 at w=1: exactly two values. Layer 1 at w=2: more than
        // two but still discrete (4 levels). Classifier: float regardless
        // of its schedule entry.
        assert_eq!(distinct(&mlp.effective_weights(0)), 2);
        let d1 = distinct(&mlp.effective_weights(1));
        assert!(d1 > 2 && d1 <= 4, "{d1}");
        assert!(distinct(&mlp.effective_weights(2)) > 4);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }
}
