//! Lowering trained QAT models onto the packed integer engine.
//!
//! A w1aQ MLP trained with the symmetric hard-tanh activation grid is
//! exactly representable on the APNN-TC machinery:
//!
//! * 1-bit weights become ±1 planes (Case III operands);
//! * a symmetric activation `a = code·s_a − 1` (`s_a = 2/(2^q−1)`) is an
//!   *unsigned* code plus an affine: the GEMM becomes
//!   `z = s_w·s_a·(signs·codes) + (bias + s_w·z₀·Σ signs)` — the zero-point
//!   term is a per-output-row constant that folds into the fused
//!   [`EpilogueOp::Affine`] bias;
//! * re-quantization to the next layer's codes is the paper's `⌊(v−z)/s⌋`
//!   epilogue with `s = s_a`, `z = −1 − s_a/2` (flooring the +½ makes it a
//!   round).
//!
//! The final layer's positive affine is applied outside the engine, so the
//! class ranking is exact integer arithmetic end to end.

use apnn_bitpack::BitPlanes;
use apnn_bitpack::Encoding;
use apnn_kernels::apmm::{Apmm, ApmmDesc};
use apnn_kernels::fusion::{Epilogue, EpilogueOp};
use apnn_nn::functional::{QuantNet, QuantStage};

use crate::mlp::{argmax, Mlp, QuantScheme};

/// One exported layer: packed ±1 weights + the affine fold.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedLayer {
    /// +1/−1 weight signs, `out × in`.
    pub(crate) signs: Vec<i32>,
    /// Weight scale `s_w = E[|w|]`.
    pub(crate) s_w: f32,
    /// Bias (already including the activation zero-point fold).
    pub(crate) bias_folded: Vec<f32>,
    /// In width.
    pub(crate) fan_in: usize,
    /// Out width.
    pub(crate) fan_out: usize,
}

/// A trained model lowered to packed integer form.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedNet {
    pub(crate) layers: Vec<ExportedLayer>,
    /// Activation bits `q` for hidden layers.
    pub a_bits: u32,
    /// Input code width — 8 bits, following the paper's §5.1 dataflow (the
    /// first layer always consumes the 8-bit quantized input).
    pub input_bits: u32,
    /// Input feature width.
    pub dim: usize,
    /// Classes.
    pub classes: usize,
}

/// Export a trained MLP. Requires
/// `QuantScheme::Quantized { w_bits: 1, quantize_output: true, .. }`.
pub fn export_mlp(mlp: &Mlp) -> ExportedNet {
    let QuantScheme::Quantized {
        w_bits,
        a_bits,
        quantize_output,
    } = mlp.scheme
    else {
        panic!("only quantized models can be exported")
    };
    assert_eq!(w_bits, 1, "export supports 1-bit weights (±1 planes)");
    assert!(
        quantize_output,
        "the classifier layer must be quantized for integer lowering"
    );

    let layers = mlp
        .layers
        .iter()
        .map(|l| {
            let s_w = l.w.iter().map(|w| w.abs()).sum::<f32>() / l.w.len().max(1) as f32;
            let signs: Vec<i32> = l.w.iter().map(|&w| if w >= 0.0 { 1 } else { -1 }).collect();
            // Fold the activation zero-point z₀ = −1: z = … + s_w·z₀·Σsigns.
            let bias_folded: Vec<f32> = (0..l.fan_out)
                .map(|o| {
                    let row_sum: i32 = signs[o * l.fan_in..(o + 1) * l.fan_in].iter().sum();
                    l.b[o] + -s_w * row_sum as f32
                })
                .collect();
            ExportedLayer {
                signs,
                s_w,
                bias_folded,
                fan_in: l.fan_in,
                fan_out: l.fan_out,
            }
        })
        .collect();

    ExportedNet {
        layers,
        a_bits,
        input_bits: 8,
        dim: mlp.layers[0].fan_in,
        classes: mlp.layers.last().unwrap().fan_out,
    }
}

impl ExportedNet {
    /// Code levels of layer `li`'s *input* operand (`2^bits − 1`).
    fn in_levels(&self, li: usize) -> f32 {
        let bits = if li == 0 {
            self.input_bits
        } else {
            self.a_bits
        };
        ((1u32 << bits) - 1) as f32
    }

    /// Input activation scale of layer `li`: `s_a = 2/(2^bits − 1)`.
    fn in_s_a(&self, li: usize) -> f32 {
        2.0 / self.in_levels(li)
    }

    /// Hidden activation scale `2/(2^q − 1)`.
    fn hidden_s_a(&self) -> f32 {
        2.0 / ((1u32 << self.a_bits) - 1) as f32
    }

    /// Quantize raw inputs (hard-tanh clipped) to 8-bit input codes (§5.1).
    pub fn quantize_input(&self, x: &[f32]) -> Vec<u32> {
        let levels = self.in_levels(0);
        x.iter()
            .map(|&v| ((v.clamp(-1.0, 1.0) + 1.0) / 2.0 * levels).round() as u32)
            .collect()
    }

    /// Lower the trained model straight into a [`apnn_nn::CompiledNet`]
    /// plan for a given batch size — weights packed, emulation plans and
    /// correction vectors materialized once, ready for repeated
    /// `infer_vec` / `infer_batched` serving.
    pub fn build_compiled(&self, batch: usize) -> apnn_nn::CompiledNet {
        self.build_qnet(batch).into_plan()
    }

    /// Build the packed engine network for a given batch size.
    pub fn build_qnet(&self, batch: usize) -> QuantNet {
        let mut net = QuantNet::default();
        let n_layers = self.layers.len();
        for (li, l) in self.layers.iter().enumerate() {
            let weights = BitPlanes::from_signed_binary(&l.signs, l.fan_out, l.fan_in);
            let x_bits = if li == 0 {
                self.input_bits
            } else {
                self.a_bits
            };
            let desc = ApmmDesc {
                m: l.fan_out,
                n: batch,
                k: l.fan_in,
                w_bits: 1,
                x_bits,
                w_enc: Encoding::PlusMinusOne,
                x_enc: Encoding::ZeroOne,
            };
            let last = li + 1 == n_layers;
            let epi = if last {
                Epilogue::none() // final affine applied outside the engine
            } else {
                let out_s = self.hidden_s_a();
                Epilogue::none()
                    .then(EpilogueOp::Affine {
                        mul: l.s_w * self.in_s_a(li),
                        add: l.bias_folded.clone(),
                    })
                    .then(EpilogueOp::Quantize {
                        // floor((v + 1 + s/2)/s) clamped
                        //   = round((v+1)/2 · levels) clamped.
                        scale: out_s,
                        zero_point: -1.0 - out_s / 2.0,
                        bits: self.a_bits,
                    })
            };
            net.push(QuantStage::Linear {
                apmm: Apmm::new(desc),
                weights,
                epi,
            });
        }
        net
    }

    /// Integer logits through an already-compiled plan (from
    /// [`Self::build_compiled`]) — the serving path: lower once, call this
    /// per request batch with no weight re-packing.
    pub fn logits_int_with(
        &self,
        plan: &apnn_nn::CompiledNet,
        xs: &[f32],
        batch: usize,
    ) -> Vec<i32> {
        assert_eq!(xs.len(), batch * self.dim);
        let codes: Vec<u32> = self.quantize_input(xs);
        let input =
            BitPlanes::from_codes(&codes, batch, self.dim, self.input_bits, Encoding::ZeroOne);
        plan.infer_vec(&input)
    }

    /// Integer logits for a batch of raw inputs (row-major `batch × dim`),
    /// before the final affine.
    ///
    /// One-shot convenience: this lowers the model on every call. For
    /// serving loops, [`Self::build_compiled`] once and use
    /// [`Self::logits_int_with`].
    pub fn logits_int(&self, xs: &[f32], batch: usize) -> Vec<i32> {
        self.logits_int_with(&self.build_compiled(batch), xs, batch)
    }

    /// Predicted classes for a batch of raw inputs.
    pub fn predict(&self, xs: &[f32], batch: usize) -> Vec<usize> {
        let ints = self.logits_int(xs, batch);
        let last_li = self.layers.len() - 1;
        let last = &self.layers[last_li];
        let mul = last.s_w * self.in_s_a(last_li);
        (0..batch)
            .map(|b| {
                let logits: Vec<f32> = (0..self.classes)
                    .map(|c| ints[b * self.classes + c] as f32 * mul + last.bias_folded[c])
                    .collect();
                argmax(&logits)
            })
            .collect()
    }

    /// Classification accuracy of the packed engine on `(xs, ys)`.
    pub fn accuracy(&self, xs: &[f32], ys: &[usize], dim: usize) -> f32 {
        assert_eq!(dim, self.dim);
        let preds = self.predict(xs, ys.len());
        preds.iter().zip(ys).filter(|(p, y)| p == y).count() as f32 / ys.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;
    use crate::train::{train, TrainConfig};

    fn trained_exportable() -> (SyntheticDataset, Mlp) {
        let data = SyntheticDataset::generate(4, 24, 40, 24, 0.35, 77);
        let mut cfg = TrainConfig::new(
            vec![32],
            QuantScheme::Quantized {
                w_bits: 1,
                a_bits: 2,
                quantize_output: true,
            },
        );
        cfg.epochs = 12;
        let r = train(&data, &cfg);
        (data, r.mlp)
    }

    /// Pure-loop reference of the exported integer pipeline, using exactly
    /// the engine's formulas — predictions must match bit-for-bit.
    #[allow(clippy::needless_range_loop)]
    fn reference_predict(net: &ExportedNet, xs: &[f32], batch: usize) -> Vec<usize> {
        let hid_levels = ((1u32 << net.a_bits) - 1) as f32;
        let in_levels = ((1u32 << net.input_bits) - 1) as f32;
        let hid_s = 2.0 / hid_levels;
        let mut preds = Vec::with_capacity(batch);
        for b in 0..batch {
            let x = &xs[b * net.dim..(b + 1) * net.dim];
            let mut codes: Vec<i32> = x
                .iter()
                .map(|&v| ((v.clamp(-1.0, 1.0) + 1.0) / 2.0 * in_levels).round() as i32)
                .collect();
            let n_layers = net.layers.len();
            let mut logits = Vec::new();
            for (li, l) in net.layers.iter().enumerate() {
                let in_s = if li == 0 { 2.0 / in_levels } else { hid_s };
                let mut next = Vec::with_capacity(l.fan_out);
                for o in 0..l.fan_out {
                    let mut acc = 0i32;
                    for i in 0..l.fan_in {
                        acc += l.signs[o * l.fan_in + i] * codes[i];
                    }
                    if li + 1 == n_layers {
                        next.push(acc);
                    } else {
                        // Mirror Epilogue: Affine then Quantize.
                        let v = acc as f32 * (l.s_w * in_s) + l.bias_folded[o];
                        let q = ((v - (-1.0 - hid_s / 2.0)) / hid_s).floor();
                        next.push(q.clamp(0.0, hid_levels) as i32);
                    }
                }
                if li + 1 == n_layers {
                    let mul = l.s_w * in_s;
                    logits = next
                        .iter()
                        .enumerate()
                        .map(|(c, &v)| v as f32 * mul + l.bias_folded[c])
                        .collect();
                } else {
                    codes = next;
                }
            }
            preds.push(argmax(&logits));
        }
        preds
    }

    #[test]
    fn engine_matches_pure_integer_reference_exactly() {
        let (data, mlp) = trained_exportable();
        let net = export_mlp(&mlp);
        let batch = data.test_len();
        let engine = net.predict(&data.test_x, batch);
        let reference = reference_predict(&net, &data.test_x, batch);
        assert_eq!(engine, reference);
    }

    #[test]
    fn exported_accuracy_close_to_fake_quant() {
        let (data, mlp) = trained_exportable();
        let net = export_mlp(&mlp);
        let fake = mlp.accuracy(&data.test_x, &data.test_y, data.dim);
        let packed = net.accuracy(&data.test_x, &data.test_y, data.dim);
        // The packed path also quantizes the *input* (the fake path trains
        // on raw floats), so allow a modest gap.
        assert!(
            (fake - packed).abs() <= 0.15,
            "fake {fake} vs packed {packed}"
        );
        // And it should still clearly beat chance.
        assert!(packed > 1.2 / data.num_classes as f32);
    }

    #[test]
    fn zero_point_fold_matches_decomposed_math() {
        // One layer, hand-checkable: w = [+1, −1]·s_w, 2-bit input codes.
        let net = ExportedNet {
            layers: vec![ExportedLayer {
                signs: vec![1, -1],
                s_w: 0.5,
                bias_folded: vec![0.25 + -0.5 * 0.0], // Σsigns = 0
                fan_in: 2,
                fan_out: 1,
            }],
            a_bits: 2,
            input_bits: 2,
            dim: 2,
            classes: 1,
        };
        // x = [1.0, −1.0] → codes [3, 0]; acc = 1·3 + (−1)·0 = 3.
        let ints = net.logits_int(&[1.0, -1.0], 1);
        assert_eq!(ints, vec![3]);
        // Arithmetic check: z = s_w·(1·1 + (−1)(−1)) + b = 0.5·2 + 0.25;
        // engine: acc·s_w·s_a + bias_folded = 3·0.5·(2/3) + 0.25 = 1.25. ✓
        let v = ints[0] as f32 * (0.5 * 2.0 / 3.0) + 0.25;
        assert!((v - 1.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "quantized")]
    fn float_models_cannot_export() {
        let mlp = Mlp::new(&[4, 8, 2], QuantScheme::Float, 1);
        let _ = export_mlp(&mlp);
    }
}
