//! LQ-Nets-style Quantization-Error-Minimization (QEM) basis learning.
//!
//! The paper follows LQ-Nets \[46\]: a `p`-bit weight is represented as
//! `w ≈ Σ_s v_s · b_s` with `b_s ∈ {−1, +1}` and a learned basis
//! `v ∈ R^p`. QEM alternates (1) encoding each weight to its nearest
//! representable level and (2) re-fitting the basis in closed form
//! (ordinary least squares on the ±1 design matrix).

/// Learned `p`-bit QEM quantizer: basis + the 2^p representable levels.
#[derive(Debug, Clone)]
pub struct QemQuantizer {
    /// Basis vector `v` (length `p`).
    pub basis: Vec<f32>,
    /// Bits `p`.
    pub bits: u32,
}

impl QemQuantizer {
    /// All `2^p` representable levels, with their sign patterns
    /// (bit s of the index = 1 ⇒ `b_s = +1`).
    pub fn levels(&self) -> Vec<f32> {
        let p = self.bits;
        (0..(1u32 << p))
            .map(|code| {
                (0..p)
                    .map(|s| {
                        let sign = if (code >> s) & 1 == 1 { 1.0 } else { -1.0 };
                        sign * self.basis[s as usize]
                    })
                    .sum()
            })
            .collect()
    }

    /// Encode a value to the index of its nearest level.
    pub fn encode(&self, x: f32) -> u32 {
        let levels = self.levels();
        let mut best = 0u32;
        let mut best_d = f32::INFINITY;
        for (i, &l) in levels.iter().enumerate() {
            let d = (x - l).abs();
            if d < best_d {
                best_d = d;
                best = i as u32;
            }
        }
        best
    }

    /// Fake-quantize to the nearest level.
    pub fn fake(&self, x: f32) -> f32 {
        self.levels()[self.encode(x) as usize]
    }

    /// Fit a `p`-bit QEM quantizer to `weights` by alternating optimization.
    pub fn fit(weights: &[f32], bits: u32, iters: usize) -> Self {
        assert!(
            (1..=4).contains(&bits),
            "QEM basis supported for 1..=4 bits"
        );
        let p = bits as usize;
        // Init: power-of-two decaying basis scaled by mean |w| (the LQ-Nets
        // initialization).
        let mean_abs = weights.iter().map(|w| w.abs()).sum::<f32>() / weights.len().max(1) as f32;
        let mut q = QemQuantizer {
            basis: (0..p)
                .map(|s| mean_abs * (1 << s) as f32 / (1 << (p - 1)) as f32)
                .collect(),
            bits,
        };
        for _ in 0..iters {
            // (1) Encode all weights with the current basis.
            let levels = q.levels();
            let codes: Vec<u32> = weights
                .iter()
                .map(|&w| {
                    let mut best = 0u32;
                    let mut bd = f32::INFINITY;
                    for (i, &l) in levels.iter().enumerate() {
                        let d = (w - l).abs();
                        if d < bd {
                            bd = d;
                            best = i as u32;
                        }
                    }
                    best
                })
                .collect();
            // (2) Closed-form basis refit: solve (BᵀB) v = Bᵀ w.
            let mut btb = vec![0f64; p * p];
            let mut btw = vec![0f64; p];
            for (&w, &code) in weights.iter().zip(&codes) {
                let b: Vec<f64> = (0..p)
                    .map(|s| if (code >> s) & 1 == 1 { 1.0 } else { -1.0 })
                    .collect();
                for i in 0..p {
                    btw[i] += b[i] * w as f64;
                    for j in 0..p {
                        btb[i * p + j] += b[i] * b[j];
                    }
                }
            }
            if let Some(v) = solve_spd(&btb, &btw, p) {
                // Keep the basis positive and sorted for a canonical form.
                let mut v: Vec<f32> = v.iter().map(|&x| x.abs() as f32).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                if v.iter().all(|x| x.is_finite() && *x > 0.0) {
                    q.basis = v;
                }
            }
        }
        q
    }

    /// Mean squared quantization error on a sample.
    pub fn mse(&self, weights: &[f32]) -> f32 {
        let levels = self.levels();
        weights
            .iter()
            .map(|&w| {
                let e = levels
                    .iter()
                    .map(|&l| (w - l) * (w - l))
                    .fold(f32::INFINITY, f32::min);
                e
            })
            .sum::<f32>()
            / weights.len().max(1) as f32
    }
}

/// Gaussian elimination for the tiny (≤4×4) SPD normal equations.
fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        for r in col + 1..n {
            if m[r * n + col].abs() > m[piv * n + col].abs() {
                piv = r;
            }
        }
        if m[piv * n + col].abs() < 1e-12 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                m.swap(col * n + c, piv * n + c);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * n + col];
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[r * n + col] / d;
            for c in 0..n {
                m[r * n + c] -= f * m[col * n + c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    Some((0..n).map(|i| rhs[i] / m[i * n + i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_sample(n: usize, seed: u64) -> Vec<f32> {
        // Box-Muller-ish via sum of uniforms (CLT), deterministic.
        let mut s = seed;
        (0..n)
            .map(|_| {
                let mut acc = 0.0f32;
                for _ in 0..12 {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    acc += ((s >> 33) as f32) / (u32::MAX >> 1) as f32;
                }
                acc - 6.0
            })
            .collect()
    }

    #[test]
    fn one_bit_recovers_mean_abs() {
        // For p=1 the OLS solution is exactly mean(|w|) (XNOR-Net scaling).
        let w = gaussian_sample(4096, 3);
        let q = QemQuantizer::fit(&w, 1, 5);
        let mean_abs = w.iter().map(|x| x.abs()).sum::<f32>() / w.len() as f32;
        assert!(
            (q.basis[0] - mean_abs).abs() / mean_abs < 0.02,
            "{:?}",
            q.basis
        );
    }

    #[test]
    fn more_bits_less_error() {
        let w = gaussian_sample(4096, 7);
        let e1 = QemQuantizer::fit(&w, 1, 8).mse(&w);
        let e2 = QemQuantizer::fit(&w, 2, 8).mse(&w);
        let e3 = QemQuantizer::fit(&w, 3, 8).mse(&w);
        assert!(e2 < e1, "e1={e1} e2={e2}");
        assert!(e3 < e2, "e2={e2} e3={e3}");
    }

    #[test]
    fn iterations_do_not_increase_error() {
        let w = gaussian_sample(2048, 11);
        let early = QemQuantizer::fit(&w, 2, 1).mse(&w);
        let late = QemQuantizer::fit(&w, 2, 10).mse(&w);
        assert!(late <= early * 1.001, "early={early} late={late}");
    }

    #[test]
    fn levels_count_and_symmetry() {
        let q = QemQuantizer {
            basis: vec![0.5, 1.0],
            bits: 2,
        };
        let mut levels = q.levels();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(levels, vec![-1.5, -0.5, 0.5, 1.5]);
    }

    #[test]
    fn encode_picks_nearest() {
        let q = QemQuantizer {
            basis: vec![1.0],
            bits: 1,
        };
        assert_eq!(q.fake(0.3), 1.0);
        assert_eq!(q.fake(-0.3), -1.0);
    }
}
