#![warn(missing_docs)]

//! # apnn-quant
//!
//! The quantization-algorithm side of the APNN-TC reproduction:
//!
//! * [`affine`] — scale/zero-point affine quantization (the §5.2 quantize
//!   op of the paper).
//! * [`qem`] — LQ-Nets-style Quantization-Error-Minimization basis learning
//!   (the training recipe the paper adopts, §2.1).
//! * [`dorefa`] — DoReFa-Net weight/activation quantizers.
//! * [`mlp`] / [`mod@train`] — a manual-backprop classifier with
//!   straight-through-estimator quantization-aware training.
//! * [`data`] — a reproducible synthetic image-classification dataset
//!   (the offline substitute for ImageNet in the Table 1 accuracy
//!   experiment; see `DESIGN.md` §2 for the substitution argument).
//! * [`export`] — lowering trained QAT models onto the packed integer
//!   engine (`apnn_nn::QuantNet`), closing the loop between training-time
//!   fake quantization and the bit-serial inference kernels.
//! * [`serialize`] — compact `APNN1` binary artifacts for exported models
//!   (±1 weights pack to one bit each).

pub mod affine;
pub mod data;
pub mod dorefa;
pub mod export;
pub mod mlp;
pub mod qem;
pub mod serialize;
pub mod train;

pub use affine::AffineQuant;
pub use data::SyntheticDataset;
pub use mlp::{Mlp, QuantScheme};
pub use train::{schedule_accuracy, train, train_model, TrainConfig, TrainResult};
