//! DoReFa-Net quantizers (Zhou et al. \[48\]) — the scheme behind the
//! paper's flagship w1a2 configuration.

/// k-bit uniform quantization of a value already in `[0, 1]`:
/// `q_k(x) = round(x·(2^k−1)) / (2^k−1)`.
#[inline]
pub fn quantize_unit(x: f32, bits: u32) -> f32 {
    let levels = ((1u32 << bits) - 1) as f32;
    (x.clamp(0.0, 1.0) * levels).round() / levels
}

/// DoReFa weight quantization to `bits` ≥ 2:
/// `w_q = 2·q_k( tanh(w) / (2·max|tanh(W)|) + 1/2 ) − 1`, producing values
/// in `[−1, 1]`. For `bits == 1` the XNOR rule `w_q = E[|w|]·sign(w)` is
/// used instead.
pub fn quantize_weights(weights: &[f32], bits: u32) -> Vec<f32> {
    if bits == 1 {
        let scale = weights.iter().map(|w| w.abs()).sum::<f32>() / weights.len().max(1) as f32;
        return weights
            .iter()
            .map(|&w| if w >= 0.0 { scale } else { -scale })
            .collect();
    }
    let max_tanh = weights
        .iter()
        .map(|w| w.tanh().abs())
        .fold(f32::MIN_POSITIVE, f32::max);
    weights
        .iter()
        .map(|&w| {
            let unit = w.tanh() / (2.0 * max_tanh) + 0.5;
            2.0 * quantize_unit(unit, bits) - 1.0
        })
        .collect()
}

/// DoReFa activation quantization: clip to `[0, 1]` then `q_k` — returns the
/// fake-quantized value and the integer code.
#[inline]
pub fn quantize_activation(x: f32, bits: u32) -> (f32, u32) {
    let levels = ((1u32 << bits) - 1) as f32;
    let code = (x.clamp(0.0, 1.0) * levels).round() as u32;
    (code as f32 / levels, code)
}

/// Symmetric activation quantization over `[−1, 1]` (hard-tanh range): the
/// `2^k` levels are `−1 + 2·code/(2^k−1)`. For `k = 1` this is exactly the
/// BNN sign activation `{−1, +1}` — so the Table 1 "Binary" column is the
/// 1-bit member of the same family as w1a2's 2-bit grid.
#[inline]
pub fn quantize_symmetric(x: f32, bits: u32) -> (f32, u32) {
    let levels = ((1u32 << bits) - 1) as f32;
    let code = ((x.clamp(-1.0, 1.0) + 1.0) / 2.0 * levels).round() as u32;
    (code as f32 * 2.0 / levels - 1.0, code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_quantizer_grid() {
        // 2-bit: levels {0, 1/3, 2/3, 1}.
        assert_eq!(quantize_unit(0.0, 2), 0.0);
        assert!((quantize_unit(0.4, 2) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(quantize_unit(1.0, 2), 1.0);
        assert_eq!(quantize_unit(2.0, 2), 1.0); // clips
        assert_eq!(quantize_unit(-1.0, 2), 0.0);
    }

    #[test]
    fn one_bit_weights_are_scaled_signs() {
        let w = vec![0.5, -0.25, 1.0, -1.0];
        let q = quantize_weights(&w, 1);
        let scale = (0.5 + 0.25 + 1.0 + 1.0) / 4.0;
        assert_eq!(q, vec![scale, -scale, scale, -scale]);
    }

    #[test]
    fn multi_bit_weights_bounded() {
        let w: Vec<f32> = (-10..=10).map(|i| i as f32 / 3.0).collect();
        for bits in [2u32, 3, 4] {
            let q = quantize_weights(&w, bits);
            assert!(q.iter().all(|&v| (-1.0..=1.0).contains(&v)));
            // Monotone in the input.
            for i in 1..q.len() {
                assert!(q[i] >= q[i - 1]);
            }
        }
    }

    #[test]
    fn activation_codes_roundtrip() {
        for bits in [1u32, 2, 4] {
            let levels = ((1u32 << bits) - 1) as f32;
            for i in 0..=10 {
                let x = i as f32 / 10.0;
                let (fake, code) = quantize_activation(x, bits);
                assert!((fake - code as f32 / levels).abs() < 1e-6);
                assert!(code <= levels as u32);
            }
        }
    }

    #[test]
    fn symmetric_one_bit_is_sign() {
        assert_eq!(quantize_symmetric(0.7, 1), (1.0, 1));
        assert_eq!(quantize_symmetric(-0.7, 1), (-1.0, 0));
        assert_eq!(quantize_symmetric(5.0, 1), (1.0, 1));
    }

    #[test]
    fn symmetric_two_bit_grid() {
        // Levels: −1, −1/3, 1/3, 1.
        let (v, c) = quantize_symmetric(-1.0, 2);
        assert_eq!((v, c), (-1.0, 0));
        let (v, c) = quantize_symmetric(0.4, 2);
        assert!((v - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(c, 2);
        let (v, c) = quantize_symmetric(1.0, 2);
        assert_eq!((v, c), (1.0, 3));
    }

    #[test]
    fn symmetric_refines_with_bits() {
        let xs: Vec<f32> = (-20..=20).map(|i| i as f32 / 20.0).collect();
        let err = |bits| {
            xs.iter()
                .map(|&x| (quantize_symmetric(x, bits).0 - x).abs())
                .sum::<f32>()
        };
        assert!(err(2) < err(1));
        assert!(err(3) < err(2));
    }

    #[test]
    fn more_activation_bits_less_error() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32 / 99.0).collect();
        let err = |bits| {
            xs.iter()
                .map(|&x| (quantize_activation(x, bits).0 - x).abs())
                .sum::<f32>()
        };
        assert!(err(2) < err(1));
        assert!(err(4) < err(2));
    }
}
